(* Telephone billing (§1 and §5.3): per-subscriber monthly expense
   views maintained incrementally, the tiered discount plan ("10% over
   $10, 20% over $25") always current instead of computed in batch at
   month end, and monthly billing periods as periodic views over a
   tiling calendar.

   Run with: dune exec examples/telephone_billing.exe *)

open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_workload

let day_len = 1 (* one chronon = one day *)
let month_len = 30 * day_len

let () =
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 2000) ~name:"calls"
       Telecom.call_schema);
  let calls = Db.chronicle db "calls" in

  (* The running monthly expenses view driving the discount plan. *)
  let expenses_def =
    Discount.view_def ~name:"expenses" ~chronicle:calls ~customer_attr:"number"
      ~amount_attr:"cost"
  in

  (* One expenses view per billing month: a periodic view over a tiling
     calendar.  Expired statements are reclaimed after 90 days. *)
  let months = Calendar.tiling ~start:0 ~width:month_len in
  let statements =
    Periodic.create ~expire_after:(90 * day_len) ~def:expenses_def
      ~calendar:months ()
  in
  Periodic.attach db statements;

  let plan = Discount.us_phone_1995 in
  let rng = Rng.create 2024 in
  let zipf = Zipf.create ~n:50 ~s:1.1 in

  (* Two months of traffic, ~12 calls/day. *)
  for day = 0 to (2 * 30) - 1 do
    Db.advance_clock db day;
    for _ = 1 to 12 do
      ignore (Db.append db "calls" [ Telecom.call rng zipf ])
    done
  done;

  (* Mid-month view: the discount figure is already current (the batch
     system would still show last month's). *)
  let month1 =
    match Periodic.get statements 1 with
    | Some v -> v
    | None -> failwith "month 1 missing"
  in
  Format.printf "current month-2 discounted totals (top subscribers):@.";
  List.iter
    (fun number ->
      let total = Discount.current_total month1 ~customer:(Value.Int number) in
      let due = Discount.current_discounted plan month1 ~customer:(Value.Int number) in
      Format.printf "  subscriber %d: undiscounted $%.2f, rate %.0f%%, due $%.2f@."
        number total
        (100. *. Discount.rate plan total)
        due)
    [ 1; 2; 3 ];

  (* Month 1 closed at day 30: its statement is frozen.  Verify the
     incremental statement equals a batch recomputation over the raw
     call detail records (which we happened to retain for the check). *)
  let month0 =
    match Periodic.get statements 0 with
    | Some v -> v
    | None -> failwith "month 0 missing"
  in
  let subscriber = Value.Int 1 in
  let batch_total =
    (* month 0 received sequence numbers 1..360 (12 calls/day for 30
       days); replay them from the retained call-detail window *)
    let schema = Chron.schema calls in
    let npos = Schema.pos schema "number" and cpos = Schema.pos schema "cost" in
    let spos = Schema.pos schema Seqnum.attr in
    let total = ref 0. in
    Chron.scan
      (fun tu ->
        let sn = Seqnum.of_value (Tuple.get tu spos) in
        if sn <= 30 * 12 && Value.equal (Tuple.get tu npos) subscriber then
          total := !total +. Value.to_float (Tuple.get tu cpos))
      calls;
    !total
  in
  let incremental_total = Discount.current_total month0 ~customer:subscriber in
  Format.printf
    "@.month-1 statement for subscriber 1: incremental $%.2f, batch replay \
     $%.2f (%s)@."
    incremental_total batch_total
    (if Float.abs (incremental_total -. batch_total) < 1e-6 then "equal"
     else "MISMATCH");

  Format.printf "open statements: %d, finalized kept: %d, expired: %d@."
    (List.length (Periodic.active statements))
    (List.length (Periodic.finalized statements))
    (Periodic.expired_total statements);

  (* The §1 power-on query: total minutes this month for a subscriber,
     from a second persistent view, in O(1). *)
  let _minutes =
    Db.define_view db
      (Sca.define ~name:"minutes" ~body:(Ca.Chronicle calls)
         (Sca.Group_agg ([ "number" ], [ Aggregate.sum "minutes" "total_minutes" ])))
  in
  ignore (Db.append db "calls" [ Telecom.call rng zipf ]);
  match Db.summary db ~view:"minutes" [ Value.Int 1 ] with
  | Some _row -> Format.printf "power-on minutes query answered from the view@."
  | None -> Format.printf "subscriber 1 has no calls yet@."
