type t = Atom of string | List of t list

exception Parse_error of { message : string; pos : int }

let parse_error pos fmt =
  Format.kasprintf (fun message -> raise (Parse_error { message; pos })) fmt

(* ---- printing ---- *)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')'
         || c = '"' || c = '\\' || c = ';')
       s

let quote_atom s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then quote_atom s else s

let rec to_string = function
  | Atom s -> atom_to_string s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let to_string_pretty sexp =
  let buf = Buffer.create 1024 in
  let rec go indent sexp =
    match sexp with
    | Atom s -> Buffer.add_string buf (atom_to_string s)
    | List items when List.for_all (function Atom _ -> true | List _ -> false) items
      ->
        Buffer.add_string buf (to_string sexp)
    | List items ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 1) ' ')
            end;
            go (indent + 1) item)
          items;
        Buffer.add_char buf ')'
  in
  go 0 sexp;
  Buffer.contents buf

(* ---- parsing ---- *)

type cursor = { text : string; mutable pos : int }

let peek_char c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let rec skip_ws c =
  match peek_char c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | Some ';' ->
      (* comment to end of line *)
      while peek_char c <> None && peek_char c <> Some '\n' do
        c.pos <- c.pos + 1
      done;
      skip_ws c
  | _ -> ()

let parse_quoted c =
  let buf = Buffer.create 16 in
  c.pos <- c.pos + 1;
  let rec go () =
    match peek_char c with
    | None -> parse_error c.pos "unterminated quoted atom"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek_char c with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            c.pos <- c.pos + 1;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            c.pos <- c.pos + 1;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            c.pos <- c.pos + 1;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char buf c.text.[c.pos];
            c.pos <- c.pos + 1;
            go ()
        | Some ch -> parse_error c.pos "bad escape \\%c" ch
        | None -> parse_error c.pos "unterminated escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_bare c =
  let start = c.pos in
  let is_end = function
    | None -> true
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') -> true
    | Some _ -> false
  in
  while not (is_end (peek_char c)) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then parse_error c.pos "expected an atom";
  String.sub c.text start (c.pos - start)

let rec parse_one c =
  skip_ws c;
  match peek_char c with
  | None -> parse_error c.pos "unexpected end of input"
  | Some '(' ->
      c.pos <- c.pos + 1;
      let items = ref [] in
      let rec loop () =
        skip_ws c;
        match peek_char c with
        | Some ')' -> c.pos <- c.pos + 1
        | None -> parse_error c.pos "unterminated list"
        | Some _ ->
            items := parse_one c :: !items;
            loop ()
      in
      loop ();
      List (List.rev !items)
  | Some ')' -> parse_error c.pos "unexpected ')'"
  | Some '"' -> Atom (parse_quoted c)
  | Some _ -> Atom (parse_bare c)

let of_string text =
  let c = { text; pos = 0 } in
  let sexp = parse_one c in
  skip_ws c;
  (match peek_char c with
  | None -> ()
  | Some ch -> parse_error c.pos "trailing input starting with %C" ch);
  sexp

let of_string_many text =
  let c = { text; pos = 0 } in
  let items = ref [] in
  let rec loop () =
    skip_ws c;
    if peek_char c <> None then begin
      items := parse_one c :: !items;
      loop ()
    end
  in
  loop ();
  List.rev !items

(* ---- helpers ---- *)

let atom s = Atom s
let int i = Atom (string_of_int i)
let float f = Atom (Printf.sprintf "%h" f)
let bool b = Atom (string_of_bool b)

let shape_error what sexp =
  failwith (Printf.sprintf "Sexp: expected %s, got %s" what (to_string sexp))

let to_atom = function Atom s -> s | List _ as s -> shape_error "an atom" s

let to_int s =
  match int_of_string_opt (to_atom s) with
  | Some i -> i
  | None -> shape_error "an integer" s

let to_float s =
  match float_of_string_opt (to_atom s) with
  | Some f -> f
  | None -> shape_error "a float" s

let to_bool s =
  match bool_of_string_opt (to_atom s) with
  | Some b -> b
  | None -> shape_error "a boolean" s

let to_list = function List l -> l | Atom _ as s -> shape_error "a list" s

let field_opt sexp name =
  match sexp with
  | List items ->
      List.find_map
        (function
          | List [ Atom n; v ] when String.equal n name -> Some v
          | List (Atom n :: (_ :: _ :: _ as vs)) when String.equal n name ->
              Some (List vs)
          | _ -> None)
        items
  | Atom _ -> None

let field sexp name =
  match field_opt sexp name with
  | Some v -> v
  | None -> shape_error (Printf.sprintf "a field %S" name) sexp

let record fields = List (List.map (fun (n, v) -> List [ Atom n; v ]) fields)
