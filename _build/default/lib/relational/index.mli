(** Secondary indexes over relations: composite-key maps from attribute
    values to row ids.

    Two families, matching the two index cost models of the paper's
    complexity analysis:
    - [Hash]: expected O(1) probes (what SCA₁'s IM-Constant tier uses);
    - [Ordered]: a B+-tree with O(log n) probes and range scans (the
      IM-log(R) tier and Theorem 4.4's O(log |V|) group localization). *)

type kind = Hash | Ordered

type t

val create : kind -> attrs:string list -> t
val kind : t -> kind
val attrs : t -> string list

val add : t -> Value.t list -> int -> unit
(** Bind a key to one more row id (multi-map). *)

val remove : t -> Value.t list -> int -> unit
(** Remove one binding of the key to this row id (no-op if absent). *)

val find : t -> Value.t list -> int list
(** Row ids bound to the key (bumps [Stats.Index_probe]). *)

val find_range : t -> lo:Value.t list option -> hi:Value.t list option -> int list
(** Ordered indexes only; raises [Invalid_argument] on hash indexes. *)

val cardinality : t -> int
(** Number of distinct keys. *)
