(** Minimal S-expressions: the serialization substrate for snapshots.

    Atoms are quoted when they contain whitespace, parentheses, quotes
    or are empty; inside quotes, backslash escapes the quote and itself,
    and the usual n/t/r escapes apply. *)

type t = Atom of string | List of t list

exception Parse_error of { message : string; pos : int }

val to_string : t -> string
val to_string_pretty : t -> string
(** Indented, one nested list per line — diff-friendly snapshots. *)

val of_string : string -> t
(** Parses exactly one S-expression (surrounding whitespace allowed). *)

val of_string_many : string -> t list

(** {2 Conversion helpers} *)

val atom : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t

val to_atom : t -> string
(** Raises {!Parse_error}-style [Failure] when the shape is wrong. *)

val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool
val to_list : t -> t list

val field : t -> string -> t
(** [field (List [...; List [Atom name; v]; ...]) name = v]; raises
    [Failure] if absent. *)

val field_opt : t -> string -> t option
val record : (string * t) list -> t
