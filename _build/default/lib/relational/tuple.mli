(** Tuples: flat arrays of values, positionally matched to a schema. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t

val field : Schema.t -> t -> string -> Value.t
(** Named access via the schema. *)

val project : Schema.t -> string list -> t -> t
(** Restrict a tuple to the given attributes (schema gives positions). *)

val projector : Schema.t -> string list -> t -> t
(** Like {!project} but with the positions resolved once; apply the
    result to many tuples. *)

val concat : t -> t -> t
val remove : Schema.t -> string -> t -> t

val type_check : Schema.t -> t -> bool
(** Arity matches and every non-null value has the declared type. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val pp_with : Schema.t -> Format.formatter -> t -> unit

(** {2 Tuple sets}  Small helpers implementing set semantics for the
    algebra's union and difference. *)

val dedup : t list -> t list
(** Stable deduplication preserving first occurrence order. *)

val diff : t list -> t list -> t list
(** [diff a b] keeps the tuples of [a] not present in [b] (set
    difference; duplicates within [a] collapse). *)
