(** Selection predicates.

    The chronicle algebra of the paper restricts selection conditions to
    comparisons [A θ B] and [A θ k] with [θ ∈ {=,≠,≤,<,>,≥}] and
    disjunctions of such terms; the substrate additionally supports
    conjunction and negation (they do not change per-tuple evaluation
    cost).  {!is_ca_form} checks the paper's restricted form. *)

type op = Eq | Ne | Le | Lt | Gt | Ge

type operand = Attr of string | Const of Value.t

type t =
  | True
  | False
  | Cmp of operand * op * operand
  | And of t * t
  | Or of t * t
  | Not of t

val eval_op : op -> Value.t -> Value.t -> bool
(** Comparisons against [Null] are false (SQL-like), except [Eq]/[Ne]
    which treat [Null] as an ordinary value. *)

val compile : Schema.t -> t -> Tuple.t -> bool
(** Resolve attribute names to positions once; the returned closure
    evaluates in time linear in the predicate size.  Raises
    [Schema.Unknown_attribute] on unresolved names. *)

val eval : Schema.t -> t -> Tuple.t -> bool

val attrs : t -> string list
(** All attribute names mentioned, without duplicates. *)

val is_ca_form : t -> bool
(** True when the predicate is a disjunction of atomic comparisons, the
    form Definition 4.1 of the paper allows ([True]/[False] are
    accepted as the empty forms). *)

val conj : t list -> t
val disj : t list -> t

(** Convenience constructors: [attr = const] etc. *)

val ( =% ) : string -> Value.t -> t
val ( <>% ) : string -> Value.t -> t
val ( <% ) : string -> Value.t -> t
val ( <=% ) : string -> Value.t -> t
val ( >% ) : string -> Value.t -> t
val ( >=% ) : string -> Value.t -> t
val attr_eq : string -> string -> t

val op_name : op -> string
val pp : Format.formatter -> t -> unit
