lib/relational/vec.mli:
