lib/relational/csv_io.mli: Relation Schema Tuple Value
