lib/relational/btree.mli:
