lib/relational/tuple.ml: Array Format Hashtbl List Schema Seq Value
