lib/relational/relation.mli: Format Index Predicate Schema Tuple Value
