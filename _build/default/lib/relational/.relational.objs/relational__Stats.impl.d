lib/relational/stats.ml: Array Format List
