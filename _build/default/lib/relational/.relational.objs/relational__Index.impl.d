lib/relational/index.ml: Btree Hashtbl List Option Stats Value
