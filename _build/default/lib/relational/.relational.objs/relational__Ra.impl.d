lib/relational/ra.ml: Aggregate Array Format Groupby Hashtbl List Option Predicate Relation Schema Stats String Tuple Value
