lib/relational/csv_io.ml: Array Buffer Format Fun List Printf Relation Schema String Tuple Value
