lib/relational/sexp.ml: Buffer Format List Printf String
