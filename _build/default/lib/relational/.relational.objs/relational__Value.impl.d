lib/relational/value.ml: Bool Float Format Hashtbl Int List Printf Sexp String
