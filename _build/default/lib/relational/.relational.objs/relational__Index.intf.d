lib/relational/index.mli: Value
