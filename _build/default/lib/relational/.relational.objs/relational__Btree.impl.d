lib/relational/btree.ml: Array Format Int List Option Stats
