lib/relational/groupby.ml: Aggregate Array Hashtbl List Option Relation Schema Stats Tuple Value
