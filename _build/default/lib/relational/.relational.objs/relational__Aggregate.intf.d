lib/relational/aggregate.mli: Format Schema Sexp Value
