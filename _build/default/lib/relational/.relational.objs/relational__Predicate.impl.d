lib/relational/predicate.ml: Array Format List Schema String Tuple Value
