lib/relational/ra.mli: Aggregate Format Predicate Relation Schema Tuple
