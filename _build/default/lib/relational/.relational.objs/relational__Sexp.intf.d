lib/relational/sexp.mli:
