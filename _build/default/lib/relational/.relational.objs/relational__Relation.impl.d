lib/relational/relation.ml: Format Index List Option Predicate Schema Stats String Tuple Value Vec
