lib/relational/aggregate.ml: Float Format List Option Printf Schema Sexp Stats String Value
