lib/relational/groupby.mli: Aggregate Relation Schema Tuple Value
