(** Relation and chronicle schemas: ordered lists of typed, named
    attributes with O(1) position lookup. *)

type attr = { name : string; ty : Value.ty }

type t

exception Unknown_attribute of string
exception Duplicate_attribute of string

val make : (string * Value.ty) list -> t
(** Raises {!Duplicate_attribute} if a name repeats. *)

val attrs : t -> attr array
val arity : t -> int
val names : t -> string list

val mem : t -> string -> bool
val pos : t -> string -> int
(** Position of an attribute; raises {!Unknown_attribute}. *)

val pos_opt : t -> string -> int option
val ty : t -> string -> Value.ty

val project : t -> string list -> t
(** Schema restricted to the given attributes, in the given order. *)

val concat : t -> t -> t
(** Schema of a product/join result. Raises {!Duplicate_attribute} when
    the operand schemas share a name; disambiguate with {!rename} or
    {!prefix} first. *)

val remove : t -> string -> t
val rename : t -> (string * string) list -> t
val prefix : string -> t -> t
(** [prefix "c" s] renames every attribute [a] to ["c.a"]. *)

val equal : t -> t -> bool
(** Same names and types in the same order. *)

val union_compatible : t -> t -> bool
(** Same types in the same order (names may differ), as required by the
    algebra's union and difference. *)

val pp : Format.formatter -> t -> unit
