type attr = { name : string; ty : Value.ty }

type t = { attrs : attr array; positions : (string, int) Hashtbl.t }

exception Unknown_attribute of string
exception Duplicate_attribute of string

let of_attrs attrs =
  let positions = Hashtbl.create (Array.length attrs * 2) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem positions a.name then raise (Duplicate_attribute a.name);
      Hashtbl.add positions a.name i)
    attrs;
  { attrs; positions }

let make l =
  of_attrs (Array.of_list (List.map (fun (name, ty) -> { name; ty }) l))

let attrs t = t.attrs
let arity t = Array.length t.attrs
let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)
let mem t name = Hashtbl.mem t.positions name

let pos t name =
  match Hashtbl.find_opt t.positions name with
  | Some i -> i
  | None -> raise (Unknown_attribute name)

let pos_opt t name = Hashtbl.find_opt t.positions name
let ty t name = t.attrs.(pos t name).ty

let project t names =
  of_attrs (Array.of_list (List.map (fun n -> t.attrs.(pos t n)) names))

let concat a b = of_attrs (Array.append a.attrs b.attrs)

let remove t name =
  let i = pos t name in
  of_attrs (Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list t.attrs)))

let rename t mapping =
  let rename_one a =
    match List.assoc_opt a.name mapping with
    | Some name' -> { a with name = name' }
    | None -> a
  in
  of_attrs (Array.map rename_one t.attrs)

let prefix p t =
  of_attrs (Array.map (fun a -> { a with name = p ^ "." ^ a.name }) t.attrs)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.ty = y.ty) a.attrs b.attrs

let union_compatible a b =
  arity a = arity b && Array.for_all2 (fun x y -> x.ty = y.ty) a.attrs b.attrs

let pp ppf t =
  let pp_attr ppf a = Format.fprintf ppf "%s:%s" a.name (Value.ty_name a.ty) in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_attr)
    (Array.to_seq t.attrs)
