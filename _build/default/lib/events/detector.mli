open Relational
open Chronicle_core

(** History-less composite-event detection over a chronicle.

    Each rule watches one chronicle, correlates events by a key
    (e.g. the account number), and keeps — per key — a bounded set of
    partial pattern instances.  An appended event advances instances by
    pattern derivatives, fires completed ones, opens a fresh instance,
    and discards instances whose [within] deadline (chronons since the
    instance's first event) passed.  No stored chronicle history is
    ever read: exactly the "history-less evaluation" the paper equates
    with incremental view maintenance of the event algebra (§6). *)

type rule = {
  rule_name : string;
  pattern : Pattern.t;
  key : string list;  (** correlation attributes of the chronicle *)
  within : int option;  (** deadline in chronons from the first event *)
  cooldown : int option;
      (** after firing for a key, suppress further occurrences of this
          rule for that key until this many chronons have passed *)
  reset_on_match : bool;
      (** discard the key's partial instances when the rule fires —
          avoids the burst of overlapping matches a hot window
          otherwise produces *)
}

val rule :
  name:string ->
  pattern:Pattern.t ->
  key:string list ->
  ?within:int ->
  ?cooldown:int ->
  ?reset_on_match:bool ->
  unit ->
  rule
(** Builder with the usual defaults (no deadline, no cooldown, keep
    instances on match). *)

(** A fired composite event. *)
type occurrence = {
  rule : string;
  key_values : Value.t list;
  started_at : Seqnum.chronon;
  fired_at : Seqnum.chronon;
  fired_sn : Seqnum.t;
}

type t

val create : ?max_instances_per_key:int -> Chron.t -> t
(** [max_instances_per_key] (default 64) bounds partial-instance state;
    overflow drops the oldest instance and counts in
    {!dropped_instances}. *)

val add_rule : t -> rule -> unit
(** Raises [Invalid_argument] on duplicate rule names or key attributes
    missing from the chronicle schema. *)

val on_match : t -> (occurrence -> unit) -> unit

val attach : Db.t -> t -> unit
(** Subscribe to the database transaction path; events appended to the
    detector's chronicle are observed automatically. *)

val observe : t -> sn:Seqnum.t -> Tuple.t list -> unit
(** Manual feeding of tagged tuples (what {!attach} wires up). *)

val occurrences : t -> occurrence list
(** All fired occurrences, oldest first. *)

val occurrence_count : t -> int
val live_instances : t -> int
(** Partial instances currently tracked across all rules and keys. *)

val dropped_instances : t -> int
val suppressed : t -> int
(** Occurrences swallowed by cooldowns. *)

val chronicle : t -> Chron.t
val max_instances_per_key : t -> int
val rules : t -> rule list

val pp_occurrence : Format.formatter -> occurrence -> unit

(** {2 Snapshots} *)

type rule_dump = {
  rd_rule : rule;
  rd_instances : (Value.t list * (Seqnum.chronon * Pattern.t) list) list;
      (** per key: (started_at, residual) partials *)
  rd_last_fired : (Value.t list * Seqnum.chronon) list;
}

type dump = {
  d_rules : rule_dump list;
  d_occurrences : occurrence list;
  d_dropped : int;
  d_suppressed : int;
}

val dump : t -> dump
val load : t -> dump -> unit
(** Restore rules and partial-instance state into a freshly created
    detector on the same chronicle; raises [Invalid_argument] if the
    detector already has rules. *)
