open Relational

type t =
  | Atom of string * Predicate.t
  | Seq of t * t
  | Or of t * t
  | And of t * t

let atom name pred = Atom (name, pred)

let seq = function
  | [] -> invalid_arg "Pattern.seq: empty sequence"
  | p :: ps -> List.fold_left (fun acc q -> Seq (acc, q)) p ps

let repeat n p =
  if n < 1 then invalid_arg "Pattern.repeat: need n >= 1";
  seq (List.init n (fun _ -> p))

type step = Complete | Partial of t

let rec deriv pat sat =
  match pat with
  | Atom (_, p) -> if sat p then [ Complete ] else []
  | Seq (a, b) ->
      List.map
        (function
          | Complete -> Partial b
          | Partial a' -> Partial (Seq (a', b)))
        (deriv a sat)
  | Or (a, b) -> deriv a sat @ deriv b sat
  | And (a, b) ->
      let advance_left =
        List.map
          (function
            | Complete -> Partial b
            | Partial a' -> Partial (And (a', b)))
          (deriv a sat)
      in
      let advance_right =
        List.map
          (function
            | Complete -> Partial a
            | Partial b' -> Partial (And (a, b')))
          (deriv b sat)
      in
      advance_left @ advance_right

(* Patterns contain no closures (predicates are first-order data), so
   the structural order is safe and gives us residual deduplication. *)
let compare = Stdlib.compare

let rec size = function
  | Atom _ -> 1
  | Seq (a, b) | Or (a, b) | And (a, b) -> 1 + size a + size b

let rec pp ppf = function
  | Atom (name, p) -> Format.fprintf ppf "%s[%a]" name Predicate.pp p
  | Seq (a, b) -> Format.fprintf ppf "(%a ; %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
