lib/events/pattern.mli: Format Predicate Relational
