lib/events/detector.ml: Array Chron Chronicle_core Db Format Group Hashtbl Int List Pattern Predicate Printf Relational Schema Seqnum Stats String Tuple Value Vec
