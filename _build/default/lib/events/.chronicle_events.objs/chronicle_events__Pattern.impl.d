lib/events/pattern.ml: Format List Predicate Relational Stdlib
