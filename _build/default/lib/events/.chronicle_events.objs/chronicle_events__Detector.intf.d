lib/events/detector.mli: Chron Chronicle_core Db Format Pattern Relational Seqnum Tuple Value
