open Relational
open Chronicle_core

type rule = {
  rule_name : string;
  pattern : Pattern.t;
  key : string list;
  within : int option;
  cooldown : int option;
  reset_on_match : bool;
}

let rule ~name ~pattern ~key ?within ?cooldown ?(reset_on_match = false) () =
  { rule_name = name; pattern; key; within; cooldown; reset_on_match }

type occurrence = {
  rule : string;
  key_values : Value.t list;
  started_at : Seqnum.chronon;
  fired_at : Seqnum.chronon;
  fired_sn : Seqnum.t;
}

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

type instance = { started_at : Seqnum.chronon; residual : Pattern.t }

type compiled_rule = {
  spec : rule;
  key_of : Tuple.t -> Tuple.t;
  instances : instance list ref Key_tbl.t;
  last_fired : Seqnum.chronon Key_tbl.t;
}

type t = {
  chron : Chron.t;
  max_instances : int;
  mutable rules : compiled_rule list;
  mutable listeners : (occurrence -> unit) list;
  fired : occurrence Vec.t;
  mutable dropped : int;
  mutable suppressed : int;
}

let create ?(max_instances_per_key = 64) chron =
  if max_instances_per_key < 1 then
    invalid_arg "Detector.create: max_instances_per_key must be positive";
  {
    chron;
    max_instances = max_instances_per_key;
    rules = [];
    listeners = [];
    fired = Vec.create ();
    dropped = 0;
    suppressed = 0;
  }

let add_rule t spec =
  if List.exists (fun r -> String.equal r.spec.rule_name spec.rule_name) t.rules
  then
    invalid_arg
      (Printf.sprintf "Detector.add_rule: rule %s already exists" spec.rule_name);
  let schema = Chron.schema t.chron in
  List.iter (fun a -> ignore (Schema.pos schema a)) spec.key;
  t.rules <-
    t.rules
    @ [
        {
          spec;
          key_of = Tuple.projector schema spec.key;
          instances = Key_tbl.create 64;
          last_fired = Key_tbl.create 64;
        };
      ]

let on_match t f = t.listeners <- f :: t.listeners

let fire t rule key started_at sn =
  let occ =
    {
      rule = rule.rule_name;
      key_values = key;
      started_at;
      fired_at = Group.now (Chron.group t.chron);
      fired_sn = sn;
    }
  in
  ignore (Vec.push t.fired occ);
  List.iter (fun f -> f occ) (List.rev t.listeners)

let dedup_instances instances =
  let cmp a b =
    let c = Int.compare a.started_at b.started_at in
    if c <> 0 then c else Pattern.compare a.residual b.residual
  in
  let sorted = List.sort cmp instances in
  let rec uniq = function
    | a :: (b :: _ as rest) when cmp a b = 0 -> uniq rest
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  uniq sorted

let observe_event t sn tuple =
  let schema = Chron.schema t.chron in
  let now = Group.now (Chron.group t.chron) in
  let sat pred = Predicate.eval schema pred tuple in
  List.iter
    (fun rule ->
      let key = Array.to_list (rule.key_of tuple) in
      Stats.incr Stats.Group_lookup;
      let slot =
        match Key_tbl.find_opt rule.instances key with
        | Some slot -> slot
        | None ->
            let slot = ref [] in
            Key_tbl.add rule.instances key slot;
            slot
      in
      let expired inst =
        match rule.spec.within with
        | None -> false
        | Some k -> now > inst.started_at + k
      in
      let live = List.filter (fun i -> not (expired i)) !slot in
      (* a fresh instance may start at this very event *)
      let candidates = { started_at = now; residual = rule.spec.pattern } :: live in
      let completions = ref [] in
      let advanced =
        List.concat_map
          (fun inst ->
            List.filter_map
              (function
                | Pattern.Complete ->
                    completions := inst.started_at :: !completions;
                    None
                | Pattern.Partial p -> Some { inst with residual = p })
              (Pattern.deriv inst.residual sat))
          candidates
      in
      let fired_now =
        match List.rev !completions with
        | [] -> false
        | started_ats ->
            let cooling =
              match rule.spec.cooldown, Key_tbl.find_opt rule.last_fired key with
              | Some k, Some last -> now < last + k
              | (None | Some _), _ -> false
            in
            if cooling then begin
              t.suppressed <- t.suppressed + List.length started_ats;
              false
            end
            else begin
              (* one event can complete several overlapping instances;
                 with reset_on_match only the earliest-started fires *)
              (if rule.spec.reset_on_match then
                 fire t rule.spec key
                   (List.fold_left min (List.hd started_ats) started_ats)
                   sn
               else
                 List.iter (fun started -> fire t rule.spec key started sn) started_ats);
              Key_tbl.replace rule.last_fired key now;
              true
            end
      in
      (* skip semantics: untouched live instances stay; advanced
         partials join them — unless the match resets the key *)
      let next =
        if fired_now && rule.spec.reset_on_match then []
        else dedup_instances (live @ advanced)
      in
      let next =
        let n = List.length next in
        if n > t.max_instances then begin
          t.dropped <- t.dropped + (n - t.max_instances);
          (* keep the newest instances *)
          List.filteri (fun i _ -> i >= n - t.max_instances) next
        end
        else next
      in
      slot := next)
    t.rules

let observe t ~sn tuples = List.iter (observe_event t sn) tuples

let attach db t =
  Db.on_batch db (fun ~sn ~batch ->
      List.iter
        (fun (c, tagged) -> if c == t.chron then observe t ~sn tagged)
        batch)

let occurrences t = Vec.to_list t.fired
let occurrence_count t = Vec.length t.fired

let live_instances t =
  List.fold_left
    (fun acc rule ->
      Key_tbl.fold (fun _ slot acc -> acc + List.length !slot) rule.instances acc)
    0 t.rules

let dropped_instances t = t.dropped
let suppressed t = t.suppressed

let pp_occurrence ppf o =
  Format.fprintf ppf "%s fired for %a (started chronon %d, fired chronon %d, sn %a)"
    o.rule Value.pp_list o.key_values o.started_at o.fired_at Seqnum.pp o.fired_sn

let chronicle t = t.chron
let max_instances_per_key t = t.max_instances
let rules t = List.map (fun r -> r.spec) t.rules

type rule_dump = {
  rd_rule : rule;
  rd_instances : (Value.t list * (Seqnum.chronon * Pattern.t) list) list;
  rd_last_fired : (Value.t list * Seqnum.chronon) list;
}

type dump = {
  d_rules : rule_dump list;
  d_occurrences : occurrence list;
  d_dropped : int;
  d_suppressed : int;
}

let dump t =
  let sort_by_key l = List.sort (fun (a, _) (b, _) -> Value.compare_list a b) l in
  {
    d_rules =
      List.map
        (fun r ->
          {
            rd_rule = r.spec;
            rd_instances =
              sort_by_key
                (Key_tbl.fold
                   (fun key slot acc ->
                     ( key,
                       List.map (fun i -> (i.started_at, i.residual)) !slot )
                     :: acc)
                   r.instances []);
            rd_last_fired =
              sort_by_key (Key_tbl.fold (fun k c acc -> (k, c) :: acc) r.last_fired []);
          })
        t.rules;
    d_occurrences = occurrences t;
    d_dropped = t.dropped;
    d_suppressed = t.suppressed;
  }

let load t { d_rules; d_occurrences; d_dropped; d_suppressed } =
  if t.rules <> [] || Vec.length t.fired > 0 then
    invalid_arg "Detector.load: detector already has state";
  List.iter
    (fun rd ->
      add_rule t rd.rd_rule;
      let compiled =
        List.find
          (fun r -> String.equal r.spec.rule_name rd.rd_rule.rule_name)
          t.rules
      in
      List.iter
        (fun (key, partials) ->
          Key_tbl.replace compiled.instances key
            (ref (List.map (fun (started_at, residual) -> { started_at; residual }) partials)))
        rd.rd_instances;
      List.iter
        (fun (key, chronon) -> Key_tbl.replace compiled.last_fired key chronon)
        rd.rd_last_fired)
    d_rules;
  List.iter (fun o -> ignore (Vec.push t.fired o)) d_occurrences;
  t.dropped <- d_dropped;
  t.suppressed <- d_suppressed
