open Relational

(** Composite-event patterns over a chronicle of events.

    §6 of the paper: "in active databases, the recognition of complex
    events to be fired is done on a chronicle of events.  The notion of
    history-less evaluation … is simply the idea of incremental
    maintenance of the persistent views defined by the event algebra",
    where the language is "a variant of regular expressions" [GJS92].

    This is that event algebra: regular-expression-like patterns over
    per-tuple predicates, evaluated {e history-lessly} by Brzozowski-
    style derivatives — each appended event rewrites the set of partial
    residual patterns, and no past event is ever re-read.

    Semantics: patterns are non-contiguous (irrelevant events in
    between are ignored); one event advances one leg of a composite at
    a time. *)

type t =
  | Atom of string * Predicate.t
      (** a named step: one event satisfying the predicate *)
  | Seq of t * t  (** the first, then — strictly later — the second *)
  | Or of t * t  (** either *)
  | And of t * t  (** both, in any order, on distinct events *)

val atom : string -> Predicate.t -> t
val seq : t list -> t
(** [seq [a;b;c]] = a then b then c; raises [Invalid_argument] on []. *)

val repeat : int -> t -> t
(** [repeat n p] = [n] successive occurrences of [p] (n ≥ 1). *)

(** The outcome of feeding one event to a pattern. *)
type step = Complete | Partial of t

val deriv : t -> (Predicate.t -> bool) -> step list
(** [deriv p sat] are the ways [p] advances on an event whose predicate
    satisfaction is decided by [sat] (the caller fixes the event tuple
    and schema).  The original pattern is {e not} included: callers
    keep an instance alive themselves if they want skip semantics. *)

val compare : t -> t -> int
val size : t -> int
val pp : Format.formatter -> t -> unit
