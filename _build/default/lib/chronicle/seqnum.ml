open Relational

type t = int

let attr = "sn"
let zero = 0
let compare = Int.compare
let pp = Format.pp_print_int

type chronon = int

let value sn = Value.Int sn

let of_value = function
  | Value.Int sn -> sn
  | v ->
      invalid_arg
        (Format.asprintf "Seqnum.of_value: %a is not a sequence number" Value.pp v)
