open Relational

(** Sequence numbers and chronons.

    A chronicle is a relation with an extra {e sequencing attribute}
    drawn from an infinite ordered domain; every sequence number has an
    associated temporal instant ({e chronon}).  Sequence numbers need
    not be dense (§2.1). *)

type t = int
(** A sequence number.  The distinguished sequencing attribute of every
    chronicle is named {!attr} and holds [Value.Int] sequence numbers. *)

val attr : string
(** ["sn"] — the reserved sequencing-attribute name.  User schemas may
    not use it. *)

val zero : t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

type chronon = int
(** A temporal instant, in abstract clock ticks (applications choose the
    granularity: seconds, days, ...). *)

val value : t -> Value.t
val of_value : Value.t -> t
(** Raises [Invalid_argument] on non-integer values. *)
