open Relational

type batch = (Chron.t * Tuple.t list) list

let delta_of_base batch c =
  match List.find_opt (fun (c', _) -> c' == c) batch with
  | Some (_, tuples) -> tuples
  | None -> []

(* Join each Δ tuple with the matching relation tuples via an index
   probe on the join attributes (at most a constant number of matches in
   CA_⋈, by the key guarantee). *)
let key_join schema rel pairs delta =
  let left_key = Tuple.projector schema (List.map fst pairs) in
  let right_attrs = List.map snd pairs in
  let rschema = Relation.schema rel in
  let keep =
    List.filter (fun n -> not (List.mem n right_attrs)) (Schema.names rschema)
  in
  let rproj = Tuple.projector rschema keep in
  List.concat_map
    (fun tu ->
      let key = Array.to_list (left_key tu) in
      List.map
        (fun rtu -> Tuple.concat tu (rproj rtu))
        (Relation.lookup rel ~attrs:right_attrs key))
    delta

let rec eval expr ~sn ~batch =
  match expr with
  | Ca.Chronicle c -> delta_of_base batch c
  | Ca.Select (p, e) ->
      let s = Ca.schema_of e in
      let keep = Predicate.compile s p in
      List.filter keep (eval e ~sn ~batch)
  | Ca.Project (attrs, e) ->
      let s = Ca.schema_of e in
      let proj = Tuple.projector s attrs in
      List.map proj (eval e ~sn ~batch)
  | Ca.SeqJoin (l, r) ->
      (* both deltas carry only the batch's sequence number, so the join
         degenerates to a product of the two deltas (appendix, Thm 4.1) *)
      let dl = eval l ~sn ~batch and dr = eval r ~sn ~batch in
      if dl = [] || dr = [] then []
      else
        let rs = Ca.schema_of r in
        let drop_sn = Tuple.remove rs Seqnum.attr in
        List.concat_map
          (fun ltu -> List.map (fun rtu -> Tuple.concat ltu (drop_sn rtu)) dr)
          dl
  | Ca.Union (l, r) ->
      Tuple.dedup (eval l ~sn ~batch @ eval r ~sn ~batch)
  | Ca.Diff (l, r) -> Tuple.diff (eval l ~sn ~batch) (eval r ~sn ~batch)
  | Ca.GroupBySeq (gl, al, e) ->
      let s = Ca.schema_of e in
      snd (Groupby.run s (eval e ~sn ~batch) ~group_by:gl ~aggs:al)
  | Ca.ProductRel (e, rel) ->
      let delta = eval e ~sn ~batch in
      if delta = [] then []
      else
        Relation.fold
          (fun acc rtu ->
            List.fold_left (fun acc tu -> Tuple.concat tu rtu :: acc) acc delta)
          [] rel
        |> List.rev
  | Ca.KeyJoinRel (e, rel, pairs) ->
      key_join (Ca.schema_of e) rel pairs (eval e ~sn ~batch)
  | Ca.CrossChron (l, r) ->
      (* Theorem 4.3: requires the old value of the opposite operand,
         i.e. access to retained history. *)
      let dl = eval l ~sn ~batch and dr = eval r ~sn ~batch in
      let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
      let cross left right =
        List.concat_map
          (fun ltu -> List.map (fun rtu -> Tuple.concat ltu rtu) right)
          left
      in
      cross dl old_r @ cross old_l dr @ cross dl dr
  | Ca.ThetaJoinChron (p, l, r) ->
      let s = Ca.schema_of expr in
      let keep = Predicate.compile s p in
      let dl = eval l ~sn ~batch and dr = eval r ~sn ~batch in
      let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
      let cross left right =
        List.concat_map
          (fun ltu ->
            List.filter_map
              (fun rtu ->
                let tu = Tuple.concat ltu rtu in
                if keep tu then Some tu else None)
              right)
          left
      in
      cross dl old_r @ cross old_l dr @ cross dl dr

let all_fresh schema sn tuples =
  match Schema.pos_opt schema Seqnum.attr with
  | None -> true
  | Some pos ->
      List.for_all
        (fun tu -> Seqnum.of_value (Tuple.get tu pos) = sn)
        tuples
