open Relational

(** Batch-to-incremental computations (§5.3): tiered discount plans.

    "A popular telephone discounting plan gives a discount of 10% on
    all calls made if the monthly undiscounted expenses exceed \$10, a
    discount of 20% if the expenses exceed \$25, and so on."  Computed
    once at period end (batch), the figure is stale all month; the
    chronicle model computes it incrementally from a persistent
    SUM view so it is always current.

    A plan is a list of (threshold, rate) tiers; the applicable rate is
    that of the highest threshold strictly exceeded by the undiscounted
    total.  Because the discount re-applies to {e all} calls once a
    threshold is crossed, the discounted total is a non-trivial
    function of the running sum — exactly the mapping §5.3 calls
    "nontrivial to derive incrementally".  Here it is derived in O(#tiers)
    per lookup from the maintained running sum. *)

type t

val make : (float * float) list -> t
(** [(threshold, rate)] tiers; rates in [0,1].  Raises
    [Invalid_argument] unless thresholds are strictly increasing, rates
    non-decreasing and within [0,1]. *)

val rate : t -> float -> float
(** Applicable rate for an undiscounted total. *)

val discounted : t -> float -> float
(** [total * (1 - rate total)]. *)

val us_phone_1995 : t
(** The plan quoted in the paper: 10% over \$10, 20% over \$25. *)

(** {2 Wiring to persistent views} *)

val view_def :
  name:string ->
  chronicle:Chron.t ->
  customer_attr:string ->
  amount_attr:string ->
  Sca.t
(** The SCA₁ view [GROUPBY(C, [customer], [SUM(amount)])] whose
    maintained sum drives the plan. *)

val current_total : View.t -> customer:Value.t -> float
(** Running undiscounted total (0 if no activity). *)

val current_discounted : t -> View.t -> customer:Value.t -> float
(** Always-current discounted total: the incremental answer. *)

val batch_discounted :
  t -> Chron.t -> customer_attr:string -> amount_attr:string -> customer:Value.t -> float
(** End-of-period batch recomputation from retained history (the status
    quo §5.3 criticizes).  Raises [Chron.Not_retained] if history was
    discarded — the point being that the incremental path needs no
    history at all. *)
