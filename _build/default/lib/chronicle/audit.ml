open Relational

type verdict =
  | Consistent of { rows : int }
  | Inconsistent of { missing : Tuple.t list; unexpected : Tuple.t list }
  | Unauditable of string

let check_view view =
  let def = View.def view in
  match Sca.eval_summarize def (Eval.eval (Sca.body def)) with
  | exception Chron.Not_retained msg -> Unauditable msg
  | expected ->
      let actual = View.to_list view in
      let missing = Tuple.diff expected actual in
      let unexpected = Tuple.diff actual expected in
      if missing = [] && unexpected = [] then
        Consistent { rows = List.length actual }
      else Inconsistent { missing; unexpected }

let check_db db =
  Registry.views (Db.registry db)
  |> List.map (fun v -> (View.name v, check_view v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_consistent = function
  | Consistent _ -> true
  | Inconsistent _ | Unauditable _ -> false

let pp_verdict ppf = function
  | Consistent { rows } -> Format.fprintf ppf "consistent (%d rows)" rows
  | Unauditable msg -> Format.fprintf ppf "unauditable: %s" msg
  | Inconsistent { missing; unexpected } ->
      Format.fprintf ppf
        "@[<v>INCONSISTENT: %d rows missing from the view, %d unexpected"
        (List.length missing) (List.length unexpected);
      List.iter (fun tu -> Format.fprintf ppf "@,missing %a" Tuple.pp tu) missing;
      List.iter
        (fun tu -> Format.fprintf ppf "@,unexpected %a" Tuple.pp tu)
        unexpected;
      Format.fprintf ppf "@]"
