open Relational

type retention = Discard | Window of int | Full

exception Not_retained of string

(* Retained storage: nothing, a ring of the last [n] tuples, or the full
   history in a growable array. *)
type store =
  | No_store
  | Ring of { buf : Tuple.t option array; mutable next : int; mutable count : int }
  | All of Tuple.t Vec.t

type t = {
  name : string;
  group : Group.t;
  user_schema : Schema.t;
  schema : Schema.t;
  retention : retention;
  store : store;
  mutable total : int;
  mutable last_sn : Seqnum.t option;
  mutable subscribers : (Seqnum.t -> Tuple.t list -> unit) list;
}

let create ~group ?(retention = Discard) ~name user_schema =
  if Schema.mem user_schema Seqnum.attr then
    invalid_arg
      (Printf.sprintf
         "Chron.create %s: user schema must not contain the reserved \
          sequencing attribute %S"
         name Seqnum.attr);
  let schema =
    Schema.concat (Schema.make [ (Seqnum.attr, Value.TInt) ]) user_schema
  in
  let store =
    match retention with
    | Discard -> No_store
    | Window n ->
        if n <= 0 then invalid_arg "Chron.create: window must be positive";
        Ring { buf = Array.make n None; next = 0; count = 0 }
    | Full -> All (Vec.create ())
  in
  {
    name;
    group;
    user_schema;
    schema;
    retention;
    store;
    total = 0;
    last_sn = None;
    subscribers = [];
  }

let name t = t.name
let group t = t.group
let user_schema t = t.user_schema
let schema t = t.schema
let retention t = t.retention
let total_appended t = t.total
let last_sn t = t.last_sn

let tag sn tuple = Tuple.concat [| Seqnum.value sn |] tuple
let sn_of tuple = Seqnum.of_value (Tuple.get tuple 0)

let store_tuple t tuple =
  match t.store with
  | No_store -> ()
  | Ring r ->
      r.buf.(r.next) <- Some tuple;
      r.next <- (r.next + 1) mod Array.length r.buf;
      r.count <- min (r.count + 1) (Array.length r.buf)
  | All v -> ignore (Vec.push v tuple)

let check_tuples t tuples =
  List.iter
    (fun tu ->
      if not (Tuple.type_check t.user_schema tu) then
        invalid_arg
          (Format.asprintf "Chron.append %s: tuple %a does not match schema %a"
             t.name Tuple.pp tu Schema.pp t.user_schema))
    tuples

(* Record a batch already holding a claimed sequence number; returns the
   tagged tuples but does not notify subscribers (multi-chronicle batches
   notify only once everything is recorded). *)
let record t sn tuples =
  check_tuples t tuples;
  let tagged = List.map (tag sn) tuples in
  List.iter (store_tuple t) tagged;
  t.total <- t.total + List.length tuples;
  t.last_sn <- Some sn;
  tagged

let notify t sn tagged =
  List.iter (fun f -> f sn tagged) (List.rev t.subscribers)

let append t tuples =
  let sn = Group.next_sn t.group in
  let tagged = record t sn tuples in
  notify t sn tagged;
  sn

let append_sparse t sn tuples =
  Group.claim_sn t.group sn;
  let tagged = record t sn tuples in
  notify t sn tagged

let append_multi group batch =
  List.iter
    (fun (c, _) ->
      if not (Group.same c.group group) then
        invalid_arg
          (Printf.sprintf "Chron.append_multi: %s is not in group %s" c.name
             (Group.name group)))
    batch;
  let sn = Group.next_sn group in
  let recorded = List.map (fun (c, tuples) -> (c, record c sn tuples)) batch in
  List.iter (fun (c, tagged) -> notify c sn tagged) recorded;
  sn

let on_append t f = t.subscribers <- f :: t.subscribers

let restore t ~total ~last_sn ~retained =
  if t.total <> 0 then invalid_arg "Chron.restore: chronicle is not fresh";
  List.iter (store_tuple t) retained;
  t.total <- total;
  t.last_sn <- last_sn

let stored_count t =
  match t.store with
  | No_store -> 0
  | Ring r -> r.count
  | All v -> Vec.length v

let scan f t =
  let deliver tuple =
    Stats.incr Stats.Chronicle_scan;
    f tuple
  in
  match t.store with
  | No_store -> ()
  | Ring r ->
      let n = Array.length r.buf in
      let start = if r.count < n then 0 else r.next in
      for i = 0 to r.count - 1 do
        match r.buf.((start + i) mod n) with
        | Some tuple -> deliver tuple
        | None -> assert false
      done
  | All v -> Vec.iter deliver v

let stored t =
  let acc = ref [] in
  scan (fun tu -> acc := tu :: !acc) t;
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "chronicle %s %a [appended %d, retained %d]" t.name
    Schema.pp t.user_schema t.total (stored_count t)
