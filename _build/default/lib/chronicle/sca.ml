open Relational

type summarize =
  | Project_out of string list
  | Group_agg of string list * Aggregate.call list

type t = { name : string; body : Ca.t; summarize : summarize; schema : Schema.t }

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ca.Ill_formed s)) fmt

let define ?(allow_non_ca = false) ~name ~body summarize =
  Ca.check ~allow_non_ca body;
  let body_schema = Ca.schema_of body in
  let schema =
    match summarize with
    | Project_out attrs ->
        if List.mem Seqnum.attr attrs then
          ill_formed
            "view %s: the summarization projection must eliminate the \
             sequencing attribute (Definition 4.3)"
            name;
        (try Schema.project body_schema attrs
         with Schema.Unknown_attribute a ->
           ill_formed "view %s: summarization projects unknown attribute %s"
             name a)
    | Group_agg (gl, al) ->
        if List.mem Seqnum.attr gl then
          ill_formed
            "view %s: the summarization grouping list must not include the \
             sequencing attribute (Definition 4.3)"
            name;
        (try Aggregate.result_schema body_schema gl al
         with Schema.Unknown_attribute a ->
           ill_formed "view %s: summarization groups unknown attribute %s"
             name a)
  in
  { name; body; summarize; schema }

let name t = t.name
let body t = t.body
let summarize t = t.summarize
let schema t = t.schema

let group_attrs t =
  match t.summarize with
  | Project_out attrs -> attrs
  | Group_agg (gl, _) -> gl

let eval_summarize t body_tuples =
  let body_schema = Ca.schema_of t.body in
  match t.summarize with
  | Project_out attrs ->
      let proj = Tuple.projector body_schema attrs in
      Tuple.dedup (List.map proj body_tuples)
  | Group_agg (gl, al) ->
      snd (Groupby.run body_schema body_tuples ~group_by:gl ~aggs:al)

let pp ppf t =
  match t.summarize with
  | Project_out attrs ->
      Format.fprintf ppf "@[%s = π[%s](%a)@]" t.name (String.concat "," attrs)
        Ca.pp t.body
  | Group_agg (gl, al) ->
      Format.fprintf ppf "@[%s = γ[%s; %a](%a)@]" t.name (String.concat "," gl)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Aggregate.pp_call)
        al Ca.pp t.body
