open Relational

(** The chronicle database system (Definition 2.1): a quadruple
    (𝒞, ℛ, ℒ, 𝒱) of chronicles, relations, the view-definition
    language (here: {!Sca}, statically classified by {!Classify}), and
    persistent views.

    [append] is the transaction path: record the batch, flush
    future-effective relation updates that have come due, identify the
    affected persistent views through the registry (§5.2), and fold the
    Δ of each one — reading neither stored chronicle history nor any
    intermediate view. *)

type t

exception Unknown of string

val create : ?default_group:string -> unit -> t
(** A database starts with one chronicle group (named "main" unless
    overridden). *)

(** {2 Catalog} *)

val add_group : t -> ?clock_start:Seqnum.chronon -> string -> Group.t
val group : t -> string -> Group.t
val default_group : t -> Group.t

val add_chronicle :
  t ->
  ?group:string ->
  ?retention:Chron.retention ->
  name:string ->
  Schema.t ->
  Chron.t

val chronicle : t -> string -> Chron.t

val add_relation :
  t ->
  ?group:string ->
  name:string ->
  schema:Schema.t ->
  ?key:string list ->
  unit ->
  Versioned.t

val relation : t -> string -> Versioned.t

val group_names : t -> string list
val chronicle_names : t -> string list
val relation_names : t -> string list
(** Catalog enumeration (sorted), for snapshots and tooling. *)

val define_view :
  t -> ?index:Index.kind -> ?tier_limit:Classify.im_class -> Sca.t -> View.t
(** Register and materialize a persistent view.  The definition is
    classified; if its view class is not contained in [tier_limit]
    (default [IM_poly_r], the largest |C|-independent class) the
    definition is rejected with [Ca.Ill_formed] — this is how the
    system guarantees its own transaction-rate envelope (§3).  If the
    view's chronicles already carry retained history the initial state
    is computed from it (requires complete retention). *)

val view : t -> string -> View.t

val drop_view : t -> string -> unit
(** Stop maintaining and forget a persistent view.  Raises {!Unknown}
    if absent. *)

val views : t -> View.t list
val classify_view : t -> string -> Classify.report
val registry : t -> Registry.t

(** {2 Transactions} *)

val append : t -> string -> Tuple.t list -> Seqnum.t
(** Append one batch of user tuples (without [sn]) to the named
    chronicle and maintain all affected persistent views. *)

val append_multi : t -> ?group:string -> (string * Tuple.t list) list -> Seqnum.t
(** One batch spanning several chronicles of one group under a single
    sequence number. *)

val advance_clock : t -> ?group:string -> Seqnum.chronon -> unit

val on_batch : t -> (sn:Seqnum.t -> batch:Delta.batch -> unit) -> unit
(** Register a hook that sees every append batch after the registered
    persistent views are maintained; this is how periodic-view families
    and other extensions subscribe to the transaction path. *)

(** {2 Summary queries} *)

val summary : t -> view:string -> Value.t list -> Tuple.t option
(** Point lookup by the view's logical key — the paper's motivating
    "sub-second summary query", answered entirely from the persistent
    view. *)

val view_contents : t -> string -> Tuple.t list
