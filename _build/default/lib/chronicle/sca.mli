open Relational

(** The summarized chronicle algebra (SCA) of Definition 4.3.

    A persistent view is a chronicle-algebra body χ followed by a
    {e summarization step} that eliminates the sequencing attribute and
    maps the chronicle into a relation:

    - projection with the sequencing attribute projected out; or
    - grouping with aggregation where the grouping list does not
      include the sequencing attribute (aggregates must be
      incrementally computable).

    If χ ∈ CA₁ the language is SCA₁; if χ ∈ CA_⋈ it is SCA_⋈; both are
    classified by {!Classify}. *)

type summarize =
  | Project_out of string list
      (** result attributes; must not include [Seqnum.attr] *)
  | Group_agg of string list * Aggregate.call list
      (** grouping list (without [Seqnum.attr]) and aggregation list *)

type t

val define : ?allow_non_ca:bool -> name:string -> body:Ca.t -> summarize -> t
(** Validates the body with [Ca.check] and the summarization step's
    attribute constraints; raises [Ca.Ill_formed] otherwise.
    [allow_non_ca] is for baselines/benchmarks only. *)

val name : t -> string
val body : t -> Ca.t
val summarize : t -> summarize

val schema : t -> Schema.t
(** Schema of the persistent view (no sequencing attribute). *)

val group_attrs : t -> string list
(** The view's logical key: the projected attributes for
    [Project_out], the grouping attributes for [Group_agg]. *)

val eval_summarize : t -> Tuple.t list -> Tuple.t list
(** Batch (non-incremental) application of the summarization step to a
    body value: the reference semantics that incremental maintenance is
    tested against. *)

val pp : Format.formatter -> t -> unit
