open Relational

let subset pred schema =
  List.for_all (Schema.mem schema) (Predicate.attrs pred)

(* Wrap [expr] in the remaining selections (order is irrelevant
   semantically; keep the original relative order for readability). *)
let reapply preds expr =
  List.fold_left (fun e p -> Ca.Select (p, e)) expr (List.rev preds)

(* Push a pending stack of selection predicates as close to the base
   chronicles as their attribute sets allow. *)
let push_selections expr =
  let rec push preds expr =
    match expr with
    | Ca.Select (p, e) -> push (p :: preds) e
    | Ca.Project (attrs, e) ->
        (* projection never renames: every pending predicate was
           validated against the projected schema, a subset of the
           inner schema *)
        Ca.Project (attrs, push preds e)
    | Ca.Union (l, r) ->
        (* union/difference are positional: predicates (which bind by
           name) only push through when both operands carry the very
           same attribute names *)
        if Schema.equal (Ca.schema_of l) (Ca.schema_of r) then
          Ca.Union (push preds l, push preds r)
        else reapply preds (Ca.Union (push [] l, push [] r))
    | Ca.Diff (l, r) ->
        if Schema.equal (Ca.schema_of l) (Ca.schema_of r) then
          Ca.Diff (push preds l, push preds r)
        else reapply preds (Ca.Diff (push [] l, push [] r))
    | Ca.SeqJoin (l, r) ->
        let ls = Ca.schema_of l and rs = Ca.schema_of r in
        let to_left, rest = List.partition (fun p -> subset p ls) preds in
        let to_right, stay = List.partition (fun p -> subset p rs) rest in
        reapply stay (Ca.SeqJoin (push to_left l, push to_right r))
    | Ca.KeyJoinRel (e, r, pairs) ->
        let es = Ca.schema_of e in
        let below, stay = List.partition (fun p -> subset p es) preds in
        reapply stay (Ca.KeyJoinRel (push below e, r, pairs))
    | Ca.ProductRel (e, r) ->
        let es = Ca.schema_of e in
        let below, stay = List.partition (fun p -> subset p es) preds in
        reapply stay (Ca.ProductRel (push below e, r))
    | Ca.GroupBySeq (gl, al, e) ->
        (* a selection purely over grouping attributes commutes with the
           grouping: it keeps or drops whole groups *)
        let gl_schema = Schema.project (Ca.schema_of e) gl in
        let below, stay = List.partition (fun p -> subset p gl_schema) preds in
        reapply stay (Ca.GroupBySeq (gl, al, push below e))
    | Ca.Chronicle _ -> reapply preds expr
    | Ca.CrossChron (l, r) ->
        reapply preds (Ca.CrossChron (push [] l, push [] r))
    | Ca.ThetaJoinChron (p, l, r) ->
        reapply preds (Ca.ThetaJoinChron (p, push [] l, push [] r))
  in
  push [] expr

let rec fuse_projections expr =
  match expr with
  | Ca.Chronicle _ -> expr
  | Ca.Select (p, e) -> Ca.Select (p, fuse_projections e)
  | Ca.Project (attrs, e) -> (
      match fuse_projections e with
      | Ca.Project (_, inner) ->
          (* outer attribute list is a subset of the inner one *)
          fuse_projections (Ca.Project (attrs, inner))
      | e' ->
          if List.equal String.equal attrs (Schema.names (Ca.schema_of e'))
          then e' (* identity projection *)
          else Ca.Project (attrs, e'))
  | Ca.SeqJoin (l, r) -> Ca.SeqJoin (fuse_projections l, fuse_projections r)
  | Ca.Union (l, r) -> Ca.Union (fuse_projections l, fuse_projections r)
  | Ca.Diff (l, r) -> Ca.Diff (fuse_projections l, fuse_projections r)
  | Ca.GroupBySeq (gl, al, e) -> Ca.GroupBySeq (gl, al, fuse_projections e)
  | Ca.ProductRel (e, r) -> Ca.ProductRel (fuse_projections e, r)
  | Ca.KeyJoinRel (e, r, pairs) -> Ca.KeyJoinRel (fuse_projections e, r, pairs)
  | Ca.CrossChron (l, r) -> Ca.CrossChron (fuse_projections l, fuse_projections r)
  | Ca.ThetaJoinChron (p, l, r) ->
      Ca.ThetaJoinChron (p, fuse_projections l, fuse_projections r)

let optimize expr =
  (* one push pass moves every selection as deep as it can go; fusion
     can expose identity projections, so run the pair twice *)
  let pass e = fuse_projections (push_selections e) in
  pass (pass expr)

let rec size = function
  | Ca.Chronicle _ -> 1
  | Ca.Select (_, e) | Ca.Project (_, e) | Ca.GroupBySeq (_, _, e)
  | Ca.ProductRel (e, _) | Ca.KeyJoinRel (e, _, _) ->
      1 + size e
  | Ca.SeqJoin (l, r) | Ca.Union (l, r) | Ca.Diff (l, r) | Ca.CrossChron (l, r)
  | Ca.ThetaJoinChron (_, l, r) ->
      1 + size l + size r
