open Relational

type t = (float * float) list (* (threshold, rate), ascending thresholds *)

let make tiers =
  let rec validate prev_threshold prev_rate = function
    | [] -> ()
    | (threshold, rate) :: rest ->
        if threshold <= prev_threshold then
          invalid_arg "Discount.make: thresholds must be strictly increasing";
        if rate < prev_rate || rate < 0. || rate > 1. then
          invalid_arg
            "Discount.make: rates must be non-decreasing and within [0,1]";
        validate threshold rate rest
  in
  validate neg_infinity 0. tiers;
  tiers

let rate t total =
  List.fold_left
    (fun acc (threshold, tier_rate) -> if total > threshold then tier_rate else acc)
    0. t

let discounted t total = total *. (1. -. rate t total)

let us_phone_1995 = make [ (10., 0.10); (25., 0.20) ]

let view_def ~name ~chronicle ~customer_attr ~amount_attr =
  Sca.define ~name
    ~body:(Ca.Chronicle chronicle)
    (Sca.Group_agg
       ([ customer_attr ], [ Aggregate.sum amount_attr "total_expenses" ]))

let current_total view ~customer =
  match View.lookup view [ customer ] with
  | None -> 0.
  | Some row -> (
      match Tuple.field (View.schema view) row "total_expenses" with
      | Value.Null -> 0.
      | v -> Value.to_float v)

let current_discounted t view ~customer =
  discounted t (current_total view ~customer)

let batch_discounted t chron ~customer_attr ~amount_attr ~customer =
  let schema = Chron.schema chron in
  let cpos = Schema.pos schema customer_attr in
  let apos = Schema.pos schema amount_attr in
  let total = ref 0. in
  List.iter
    (fun tu ->
      if Value.equal (Tuple.get tu cpos) customer then
        total := !total +. Value.to_float (Tuple.get tu apos))
    (Eval.chronicle_tuples chron);
  discounted t !total
