lib/chronicle/registry.ml: Ca Chron List Option Predicate Printf Relational Sca Schema String Tuple View
