lib/chronicle/seqnum.ml: Format Int Relational Value
