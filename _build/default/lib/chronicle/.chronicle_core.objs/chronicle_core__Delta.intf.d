lib/chronicle/delta.mli: Ca Chron Relational Schema Seqnum Tuple
