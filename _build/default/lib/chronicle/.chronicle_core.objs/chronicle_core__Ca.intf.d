lib/chronicle/ca.mli: Aggregate Chron Format Group Predicate Relation Relational Schema
