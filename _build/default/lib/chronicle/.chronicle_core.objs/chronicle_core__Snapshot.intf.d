lib/chronicle/snapshot.mli: Ca Chron Db Predicate Relation Relational Sca Schema Sexp View
