lib/chronicle/db.ml: Ca Chron Classify Delta Eval Format Group Hashtbl List Option Printf Registry Sca Seqnum String Versioned View
