lib/chronicle/sca.mli: Aggregate Ca Format Relational Schema Tuple
