lib/chronicle/discount.mli: Chron Relational Sca Value View
