lib/chronicle/eval.mli: Ca Chron Relational Seqnum Tuple
