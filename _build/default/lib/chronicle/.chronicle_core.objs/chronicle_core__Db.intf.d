lib/chronicle/db.mli: Chron Classify Delta Group Index Registry Relational Sca Schema Seqnum Tuple Value Versioned View
