lib/chronicle/chron.ml: Array Format Group List Printf Relational Schema Seqnum Stats Tuple Value Vec
