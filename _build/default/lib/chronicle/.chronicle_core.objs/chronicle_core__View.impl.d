lib/chronicle/view.ml: Aggregate Array Btree Ca Format Hashtbl Index List Option Relation Relational Sca Schema Stats Tuple Value Vec
