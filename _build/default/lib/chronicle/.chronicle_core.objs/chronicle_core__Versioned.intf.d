lib/chronicle/versioned.mli: Group Predicate Relation Relational Schema Seqnum Tuple
