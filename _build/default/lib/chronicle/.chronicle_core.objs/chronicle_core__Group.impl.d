lib/chronicle/group.ml: Printf Seqnum
