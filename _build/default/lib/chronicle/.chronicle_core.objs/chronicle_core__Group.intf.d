lib/chronicle/group.mli: Seqnum
