lib/chronicle/ca.ml: Aggregate Chron Format Group List Predicate Relation Relational Schema Seqnum String
