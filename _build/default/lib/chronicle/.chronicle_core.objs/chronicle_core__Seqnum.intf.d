lib/chronicle/seqnum.mli: Format Relational Value
