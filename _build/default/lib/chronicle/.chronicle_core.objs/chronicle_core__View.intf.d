lib/chronicle/view.mli: Aggregate Format Index Relation Relational Sca Schema Tuple Value
