lib/chronicle/snapshot.ml: Aggregate Array Ca Chron Db Format Fun Group Index List Predicate Registry Relation Relational Sca Schema Sexp Tuple Value Versioned View
