lib/chronicle/versioned.ml: Group List Option Predicate Relation Relational Seqnum Tuple Vec
