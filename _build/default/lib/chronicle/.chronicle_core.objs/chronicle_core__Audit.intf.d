lib/chronicle/audit.mli: Db Format Relational Tuple View
