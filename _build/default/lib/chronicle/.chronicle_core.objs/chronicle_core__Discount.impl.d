lib/chronicle/discount.ml: Aggregate Ca Chron Eval List Relational Sca Schema Tuple Value View
