lib/chronicle/sca.ml: Aggregate Ca Format Groupby List Relational Schema Seqnum String Tuple
