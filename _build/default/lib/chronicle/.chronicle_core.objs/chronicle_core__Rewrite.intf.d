lib/chronicle/rewrite.mli: Ca
