lib/chronicle/classify.ml: Aggregate Ca Format List Predicate Printf Relation Relational Sca Seqnum
