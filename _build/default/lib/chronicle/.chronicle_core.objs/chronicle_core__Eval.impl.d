lib/chronicle/eval.ml: Ca Chron List Printf Ra Relational Schema Seqnum Tuple
