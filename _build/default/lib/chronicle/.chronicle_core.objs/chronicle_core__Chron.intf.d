lib/chronicle/chron.mli: Format Group Relational Schema Seqnum Tuple
