lib/chronicle/registry.mli: Chron Relational Tuple View
