lib/chronicle/classify.mli: Ca Format Sca
