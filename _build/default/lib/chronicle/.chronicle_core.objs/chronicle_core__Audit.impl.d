lib/chronicle/audit.ml: Chron Db Eval Format List Registry Relational Sca String Tuple View
