lib/chronicle/delta.ml: Array Ca Chron Eval Groupby List Predicate Relation Relational Schema Seqnum Tuple
