lib/chronicle/rewrite.ml: Ca List Predicate Relational Schema String
