(** Algebraic rewriting of chronicle-algebra expressions.

    The rewrites preserve the expression's value (and therefore its
    deltas) while moving work toward the base chronicles:

    - selections commute through projections (chronicle projections
      never rename, so predicates keep their meaning);
    - selections push below relation joins/products when they mention
      only chronicle-side attributes (fewer join probes per append);
    - selections push into the matching side(s) of sequence joins,
      unions and differences;
    - selections over grouping attributes commute below
      [GroupBySeq];
    - adjacent projections fuse; projections that keep every attribute
      vanish.

    Besides shrinking Δ-computation, pushing selections down is what
    lets {!Registry} extract selective guards: a body of the shape
    σ…σ(chronicle) is exactly the shape its guard analysis understands. *)

val push_selections : Ca.t -> Ca.t
val fuse_projections : Ca.t -> Ca.t

val optimize : Ca.t -> Ca.t
(** All rewrites to fixpoint (bounded).  The result is semantically
    equal to the input: property tests check value- and delta-
    equivalence on random expressions and streams. *)

val size : Ca.t -> int
(** Operator count (for tests and reporting). *)
