open Relational

(** Consistency auditing.

    Incremental maintenance is only trustworthy if it can be checked.
    When a view's base chronicles happen to retain complete history
    (retention [Full], or a window that nothing has fallen out of yet),
    the auditor recomputes the view from scratch through the reference
    semantics ({!Eval} + batch summarization) and diffs it against the
    materialization — the runtime analogue of this library's
    delta-vs-recompute property tests, usable in production as a
    spot-check.  Views over partially-discarded history are reported
    [Unauditable] rather than guessed at. *)

type verdict =
  | Consistent of { rows : int }
  | Inconsistent of { missing : Tuple.t list; unexpected : Tuple.t list }
      (** rows the recomputation has but the view lacks, and vice
          versa *)
  | Unauditable of string
      (** retention has discarded history (the normal operating mode —
          auditability is exactly what the chronicle model lets you
          trade away) *)

val check_view : View.t -> verdict
(** Recompute-and-diff one view.  Relations are read at their current
    version, so the verdict is only meaningful if relation updates since
    the audited appends were key-preserving — the same caveat as any
    after-the-fact audit of a temporal join. *)

val check_db : Db.t -> (string * verdict) list
(** Audit every registered view, sorted by name. *)

val is_consistent : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
