open Chronicle_core

type t = { view : View.t }

let create ?index def = { view = View.create ?index def }

let on_batch t ~sn ~batch =
  let delta = Delta.eval (Sca.body (View.def t.view)) ~sn ~batch in
  View.apply_delta t.view delta

let view t = t.view
let lookup t key = View.lookup t.view key
