open Relational
open Chronicle_core

type t = {
  def : Sca.t;
  key_of : Tuple.t -> Tuple.t;
  mutable result : Tuple.t list;
  mutable refreshes : int;
}

let create def =
  let schema = Sca.schema def in
  { def; key_of = Tuple.projector schema (Sca.group_attrs def); result = []; refreshes = 0 }

let refresh t =
  t.result <- Sca.eval_summarize t.def (Eval.eval (Sca.body t.def));
  t.refreshes <- t.refreshes + 1

let result t = t.result

let lookup t key =
  List.find_opt
    (fun tu -> Value.equal_list (Array.to_list (t.key_of tu)) key)
    t.result

let refresh_count t = t.refreshes
