lib/baseline/delta_ra.ml: Chronicle_core Delta Sca View
