lib/baseline/summary_fields.ml: Format Hashtbl Option Relational Tuple Value
