lib/baseline/summary_fields.mli: Relational Tuple
