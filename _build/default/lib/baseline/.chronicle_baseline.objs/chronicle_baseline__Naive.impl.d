lib/baseline/naive.ml: Array Chronicle_core Eval List Relational Sca Tuple Value
