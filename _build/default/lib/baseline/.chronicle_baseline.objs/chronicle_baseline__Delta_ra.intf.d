lib/baseline/delta_ra.mli: Chronicle_core Delta Index Relational Sca Seqnum Tuple Value View
