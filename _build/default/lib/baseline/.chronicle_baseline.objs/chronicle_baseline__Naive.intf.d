lib/baseline/naive.mli: Chronicle_core Relational Sca Tuple Value
