open Relational
open Chronicle_core

(** Baseline B1: full recomputation.

    The view is re-evaluated from retained chronicle history on every
    refresh — what a summary query costs when the system keeps no
    persistent views (the IM-Cᵏ upper bound that motivates the whole
    paper).  Requires the base chronicles to retain full history
    ([Chron.Full]); every refresh scans them, which the
    [Stats.Chronicle_scan] counter exposes. *)

type t

val create : Sca.t -> t
(** Accepts any definition, including non-CA bodies
    ([Sca.define ~allow_non_ca:true]). *)

val refresh : t -> unit
(** Recompute from scratch (O(|C|) and up). *)

val result : t -> Tuple.t list
(** Result as of the last {!refresh}. *)

val lookup : t -> Value.t list -> Tuple.t option
(** Point query against the last refreshed result, by the view's
    logical key (linear scan — the baseline also has no index). *)

val refresh_count : t -> int
