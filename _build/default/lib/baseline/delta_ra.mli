open Relational
open Chronicle_core

(** Baseline B2: incremental maintenance of views {e outside} CA.

    Proposition 3.1 / Theorem 4.3 witnesses: the Δ-rules for a
    chronicle–chronicle cross product or non-equijoin need the {e old}
    value of the opposite operand, i.e. they must read retained
    chronicle history on every append.  This maintainer wires
    [Delta.eval] (which implements those expensive rules) to a
    materialized view so benchmarks can measure the |C|-dependent
    per-append cost that the chronicle algebra is designed to exclude. *)

type t

val create : ?index:Index.kind -> Sca.t -> t
(** Use [Sca.define ~allow_non_ca:true] for the interesting cases. *)

val on_batch : t -> sn:Seqnum.t -> batch:Delta.batch -> unit
(** Incremental maintenance step (reads history for non-CA operators). *)

val view : t -> View.t
val lookup : t -> Value.t list -> Tuple.t option
