open Relational

type t = {
  bug : [ `None | `Chemical_bank ];
  balances : (int, float) Hashtbl.t;
  mutable processed : int;
}

let create_banking ?(bug = `None) () =
  { bug; balances = Hashtbl.create 1024; processed = 0 }

(* Expects (acct:int, kind:string, amount:float) tuples, withdrawals
   carrying negative amounts. *)
let process t tuple =
  let acct = Value.to_int (Tuple.get tuple 0) in
  let kind =
    match Tuple.get tuple 1 with
    | Value.Str s -> s
    | v -> invalid_arg (Format.asprintf "Summary_fields: bad kind %a" Value.pp v)
  in
  let amount = Value.to_float (Tuple.get tuple 2) in
  let old = Option.value ~default:0. (Hashtbl.find_opt t.balances acct) in
  let applied =
    match t.bug, kind with
    | `Chemical_bank, "withdrawal" ->
        (* the Feb 18, 1994 bug: the withdrawal is posted twice *)
        2. *. amount
    | (`None | `Chemical_bank), _ -> amount
  in
  Hashtbl.replace t.balances acct (old +. applied);
  t.processed <- t.processed + 1

let balance t ~acct = Option.value ~default:0. (Hashtbl.find_opt t.balances acct)
let transactions_processed t = t.processed
let accounts_tracked t = Hashtbl.length t.balances
