open Relational

(** Baseline B3: summary fields maintained by procedural application
    code — the status quo the paper replaces.

    "An application program may define a few summary fields (e.g.
    minutes_called, dollar_balance) for each customer, and update these
    fields whenever a new transaction is processed. … This updating
    code is known to be very tricky, and has been the cause of
    well-publicized banking disasters" (§1, citing the Chemical Bank
    double-posting of February 18, 1994).

    Two hand-written banking maintainers are provided: a correct one,
    and a [`Chemical_bank] variant that re-applies withdrawals under a
    race-like condition — demonstrating precisely the class of bug that
    declarative persistent views eliminate. *)

type t

val create_banking : ?bug:[ `None | `Chemical_bank ] -> unit -> t
(** Procedural dollar_balance maintenance over [Banking.txn_schema]
    tuples (untagged user tuples). *)

val process : t -> Tuple.t -> unit
(** Hand-coded per-transaction update of the summary fields. *)

val balance : t -> acct:int -> float
(** The dollar_balance summary field (0 for unseen accounts). *)

val transactions_processed : t -> int
val accounts_tracked : t -> int
