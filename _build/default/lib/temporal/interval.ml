open Chronicle_core

type t = { start : Seqnum.chronon; stop : Seqnum.chronon }

let make ~start ~stop =
  if start >= stop then
    invalid_arg
      (Printf.sprintf "Interval.make: empty interval [%d, %d)" start stop);
  { start; stop }

let width t = t.stop - t.start
let contains t c = t.start <= c && c < t.stop
let overlaps a b = a.start < b.stop && b.start < a.stop
let before t c = t.stop <= c

let compare a b =
  let c = Int.compare a.start b.start in
  if c <> 0 then c else Int.compare a.stop b.stop

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "[%d, %d)" t.start t.stop
