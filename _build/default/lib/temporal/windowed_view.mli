open Relational
open Chronicle_core

(** Automatically derived moving-window views.

    §5.1 closes with an open question: "How would such a computation
    [the cyclic buffer of 30 per-day partial sums] be derived
    automatically by the system for a generic periodic view expressed
    over any given set of overlapping time intervals?"

    For periodic views over a {e uniform sliding} calendar whose
    aggregation list consists of incrementally computable (or
    decomposable) functions with a partial-state [merge] — which is
    every function this library admits — the derivation is mechanical,
    and this module performs it: a grouped persistent view definition
    plus a window shape (n buckets of w chronons) compiles to one
    cyclic buffer per group key and aggregate call.  Per appended tuple
    the cost is O(1) aggregate steps after the group localization;
    bucket rollovers cost O(n) once per bucket width; space is
    O(groups × n), independent of the chronicle.

    The result answers the same queries as the equivalent
    [Periodic.create ~calendar:(Calendar.sliding ...)] family's current
    view, at a per-trade cost independent of the window length
    (experiment E10 and the property tests check the agreement). *)

type t

exception Not_derivable of string

val derive : ?bucket_width:int -> buckets:int -> Sca.t -> t
(** [derive ~buckets def] compiles a [Sca.Group_agg] view into per-group
    cyclic buffers covering the last [buckets × bucket_width] chronons
    (bucket width defaults to 1).  Raises {!Not_derivable} for
    projection views (no aggregate states to bucket). *)

val def : t -> Sca.t
val buckets : t -> int
val bucket_width : t -> int

val attach : Db.t -> t -> unit
(** Subscribe to the database's transaction path. *)

val note_append : t -> sn:Seqnum.t -> batch:Delta.batch -> unit

val lookup : t -> Value.t list -> Tuple.t option
(** Current window row for a group key: grouping attributes followed by
    the aggregates over the last [buckets] buckets.  [None] if the key
    has never been seen. *)

val to_list : t -> Tuple.t list
(** All group rows (groups idle for a whole window report empty-window
    aggregates: COUNT 0, SUM/MIN/MAX/AVG null). *)

val group_count : t -> int

(** {2 Snapshots} *)

val dump : t -> (Value.t list * Window.dump list) list
(** Per group key, one window dump per aggregate call. *)

val load : t -> (Value.t list * Window.dump list) list -> unit
(** Restore into a freshly derived view of the same definition and
    shape; raises [Invalid_argument] if it already has groups or the
    window counts mismatch. *)
