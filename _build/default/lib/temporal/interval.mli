open Chronicle_core

(** Half-open chronon intervals [start, stop). *)

type t = { start : Seqnum.chronon; stop : Seqnum.chronon }

val make : start:Seqnum.chronon -> stop:Seqnum.chronon -> t
(** Raises [Invalid_argument] unless [start < stop]. *)

val width : t -> int
val contains : t -> Seqnum.chronon -> bool
val overlaps : t -> t -> bool
val before : t -> Seqnum.chronon -> bool
(** The interval ends at or before the chronon (is fully in the past). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
