open Chronicle_core

type t =
  | Finite of Interval.t array (* sorted by start *)
  | Periodic of { start : Seqnum.chronon; width : int; stride : int }

let finite = function
  | [] -> invalid_arg "Calendar.finite: empty calendar"
  | intervals ->
      let a = Array.of_list intervals in
      Array.sort Interval.compare a;
      Finite a

let periodic ~start ~width ~stride =
  if width <= 0 || stride <= 0 then
    invalid_arg "Calendar.periodic: width and stride must be positive";
  Periodic { start; width; stride }

let tiling ~start ~width = periodic ~start ~width ~stride:width
let sliding ~start ~width = periodic ~start ~width ~stride:1

let interval t i =
  if i < 0 then None
  else
    match t with
    | Finite a -> if i < Array.length a then Some a.(i) else None
    | Periodic { start; width; stride } ->
        let s = start + (i * stride) in
        Some (Interval.make ~start:s ~stop:(s + width))

let is_finite = function Finite _ -> true | Periodic _ -> false

let interval_count = function
  | Finite a -> Some (Array.length a)
  | Periodic _ -> None

let covering t c =
  match t with
  | Finite a ->
      let hits = ref [] in
      Array.iteri (fun i iv -> if Interval.contains iv c then hits := i :: !hits) a;
      List.rev !hits
  | Periodic { start; width; stride } ->
      (* indices i with start + i*stride <= c < start + i*stride + width,
         i.e. (c - start - width)/stride < i <= (c - start)/stride *)
      if c < start then []
      else
        let hi = (c - start) / stride in
        let lo =
          let bound = c - start - width in
          if bound < 0 then 0
          else (bound / stride) + 1
        in
        if lo > hi then [] else List.init (hi - lo + 1) (fun k -> lo + k)

let first_covering t c = match covering t c with [] -> None | i :: _ -> Some i

let max_concurrent t =
  match t with
  | Periodic { width; stride; _ } -> Some (((width - 1) / stride) + 1)
  | Finite a ->
      (* exact: for each interval count the overlaps at its start *)
      let best = ref 0 in
      Array.iter
        (fun iv ->
          let n =
            Array.fold_left
              (fun acc other ->
                if Interval.contains other iv.Interval.start then acc + 1 else acc)
              0 a
          in
          if n > !best then best := n)
        a;
      Some !best

let pp ppf = function
  | Finite a ->
      Format.fprintf ppf "finite calendar {%a}"
        (Format.pp_print_seq
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Interval.pp)
        (Array.to_seq a)
  | Periodic { start; width; stride } ->
      Format.fprintf ppf "periodic calendar start=%d width=%d stride=%d" start
        width stride

type spec =
  | Finite_spec of Interval.t list
  | Periodic_spec of { start : Seqnum.chronon; width : int; stride : int }

let spec = function
  | Finite a -> Finite_spec (Array.to_list a)
  | Periodic { start; width; stride } -> Periodic_spec { start; width; stride }

let of_spec = function
  | Finite_spec intervals -> finite intervals
  | Periodic_spec { start; width; stride } -> periodic ~start ~width ~stride
