open Relational
open Chronicle_core

(** Periodic persistent views (§5.1).

    Given a view definition V in the summarized chronicle algebra and a
    calendar D, [V⟨D⟩] denotes one view per calendar interval, each
    defined like V but with a selection restricting chronicle tuples to
    the interval (under the group's sequence-number → chronon mapping).

    The family is maintained lazily, exactly as §5.1 prescribes for
    non-overlapping intervals — "start maintaining a view as soon as
    its time interval starts, stop as soon as its interval ends" — and
    this generalizes to overlapping calendars by keeping every covering
    interval's view open.  Expiration dates let an infinite calendar
    run in bounded space: a finalized view older than [expire_after]
    chronons is discarded and its space reclaimed. *)

type t

val create :
  ?index:Index.kind ->
  ?expire_after:int ->
  def:Sca.t ->
  calendar:Calendar.t ->
  unit ->
  t
(** [expire_after] (chronons past the interval's end; default: keep
    forever) bounds how long finalized interval views are kept. *)

val def : t -> Sca.t
val calendar : t -> Calendar.t

val attach : Db.t -> t -> unit
(** Subscribe the family to the database's transaction path
    ([Db.on_batch]); appends to the underlying chronicles then maintain
    the active interval views automatically. *)

val note_append : t -> sn:Seqnum.t -> batch:Delta.batch -> unit
(** Manual feeding (what {!attach} wires up): advance the family to the
    group's current chronon and fold the batch into every active
    interval view. *)

val get : t -> int -> View.t option
(** View of the i-th calendar interval, whether active or finalized;
    [None] if never opened or already expired. *)

val current : t -> (int * View.t) option
(** The active view whose interval covers the group clock now (the
    first, for overlapping calendars). *)

val active : t -> (int * View.t) list
(** Open interval views, ascending interval index. *)

val finalized : t -> (int * View.t) list

val live_views : t -> int
(** Active + finalized (bounded when [expire_after] is set — the §5.1
    claim that expiration makes infinitely many periodic views
    implementable). *)

val opened_total : t -> int
val expired_total : t -> int

val expire_after : t -> int option
val index_kind : t -> Relational.Index.kind option

(** {2 Snapshots} *)

type slot_dump = {
  sd_index : int;
  sd_interval : Interval.t;
  sd_active : bool;
  sd_contents : View.dump;
}

type dump = {
  d_slots : slot_dump list;
  d_opened : int;
  d_expired : int;
}

val dump : t -> dump
val load : t -> dump -> unit
(** Restore interval views into a freshly created family with the same
    definition and calendar; raises [Invalid_argument] if the family
    already has state. *)
