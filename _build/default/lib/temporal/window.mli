open Relational
open Chronicle_core

(** The cyclic-buffer moving-window optimization of §5.1.

    "Keep the total number of shares sold for each of the last 30 days
    separately, and derive the view as the sum of these 30 numbers.
    Moving from one periodic view to the next involves shifting a
    cyclic buffer of these 30 numbers" — and, with an expiration date,
    the buffer slot of an expired interval is reused.

    The window keeps [buckets] per-bucket aggregate states of width
    [bucket_width] chronons each; per added value the cost is one
    aggregate step, and per bucket rollover one O(buckets) recombination
    (amortized O(1) per chronon).  Reading {!total} is O(1): the merge
    of all closed buckets is cached and combined with the open bucket. *)

type t

val create :
  func:Aggregate.func ->
  buckets:int ->
  bucket_width:int ->
  start:Seqnum.chronon ->
  t

val func : t -> Aggregate.func
val buckets : t -> int
val bucket_width : t -> int

val add : t -> Seqnum.chronon -> Value.t -> unit
(** Fold a value observed at the given chronon.  Chronons must be
    non-decreasing; raises [Invalid_argument] otherwise.  Rolls the
    cyclic buffer if the chronon belongs to a later bucket, retiring
    buckets that fall out of the window (their slots are reused). *)

val advance : t -> Seqnum.chronon -> unit
(** Roll the window to the given chronon without adding a value. *)

val now : t -> Seqnum.chronon
val total : t -> Value.t
(** Aggregate over the window's current [buckets] buckets. *)

val bucket_totals : t -> Value.t list
(** Per-bucket current values, oldest first (for inspection/tests). *)

val rolls : t -> int
(** Number of bucket rollovers so far (cost accounting for E5). *)

(** {2 Snapshots} *)

type dump = {
  d_start : Seqnum.chronon;  (** the bucket-numbering origin *)
  d_head : int;
  d_clock : Seqnum.chronon;
  d_states : Aggregate.state list;  (** in slot order *)
}

val dump : t -> dump
val load : t -> dump -> unit
(** Restore into a freshly created window of the same shape; raises
    [Invalid_argument] on a bucket-count mismatch. *)
