lib/temporal/calendar.ml: Array Chronicle_core Format Interval List Seqnum
