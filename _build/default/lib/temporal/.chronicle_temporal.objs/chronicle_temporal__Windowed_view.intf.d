lib/temporal/windowed_view.mli: Chronicle_core Db Delta Relational Sca Seqnum Tuple Value Window
