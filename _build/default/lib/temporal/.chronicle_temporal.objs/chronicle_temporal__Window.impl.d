lib/temporal/window.ml: Aggregate Array Chronicle_core List Printf Relational Seqnum Value
