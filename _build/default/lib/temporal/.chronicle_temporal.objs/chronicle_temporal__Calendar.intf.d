lib/temporal/calendar.mli: Chronicle_core Format Interval Seqnum
