lib/temporal/periodic.ml: Ca Calendar Chronicle_core Db Delta Group Hashtbl Index Int Interval List Option Relational Sca View
