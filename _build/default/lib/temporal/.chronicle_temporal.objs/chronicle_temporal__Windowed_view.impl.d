lib/temporal/windowed_view.ml: Aggregate Array Ca Chronicle_core Db Delta Group Hashtbl List Option Printf Relational Sca Schema Seqnum Stats Tuple Value Window
