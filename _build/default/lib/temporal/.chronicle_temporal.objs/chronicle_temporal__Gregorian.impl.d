lib/temporal/gregorian.ml: Calendar Format Interval List Printf
