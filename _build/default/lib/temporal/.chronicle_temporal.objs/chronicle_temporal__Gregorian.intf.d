lib/temporal/gregorian.mli: Calendar Chronicle_core Format Seqnum
