lib/temporal/interval.mli: Chronicle_core Format Seqnum
