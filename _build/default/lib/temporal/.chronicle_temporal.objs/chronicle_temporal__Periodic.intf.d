lib/temporal/periodic.mli: Calendar Chronicle_core Db Delta Index Interval Relational Sca Seqnum View
