lib/temporal/window.mli: Aggregate Chronicle_core Relational Seqnum Value
