lib/temporal/interval.ml: Chronicle_core Format Int Printf Seqnum
