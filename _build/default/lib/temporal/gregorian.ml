
type date = { year : int; month : int; day : int }

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> invalid_arg (Printf.sprintf "Gregorian: month %d" month)

(* Hinnant's days_from_civil: days since 1970-01-01. *)
let to_days { year; month; day } =
  if month < 1 || month > 12 then
    invalid_arg (Printf.sprintf "Gregorian.to_days: month %d" month);
  if day < 1 || day > days_in_month ~year ~month then
    invalid_arg (Printf.sprintf "Gregorian.to_days: day %d of %d-%02d" day year month);
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(* Hinnant's civil_from_days. *)
let of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  { year; month; day }

let day_of_week days = ((days mod 7) + 11) mod 7
(* 1970-01-01 was a Thursday (4): (0 + 11) mod 7 = 4 ✓ *)

let month_start ~year ~month = to_days { year; month; day = 1 }

let advance_month year month k =
  let m0 = (year * 12) + (month - 1) + k in
  let year = if m0 >= 0 then m0 / 12 else (m0 - 11) / 12 in
  (year, m0 - (year * 12) + 1)

let months ~from_year ~from_month ~count =
  if count <= 0 then invalid_arg "Gregorian.months: count must be positive";
  Calendar.finite
    (List.init count (fun i ->
         let y, m = advance_month from_year from_month i in
         let y', m' = advance_month from_year from_month (i + 1) in
         Interval.make ~start:(month_start ~year:y ~month:m)
           ~stop:(month_start ~year:y' ~month:m')))

let billing_months ~from_year ~from_month ~count ~anchor_day =
  if anchor_day < 1 || anchor_day > 31 then
    invalid_arg "Gregorian.billing_months: anchor_day must be in 1..31";
  if count <= 0 then invalid_arg "Gregorian.billing_months: count must be positive";
  let anchor y m =
    let day = min anchor_day (days_in_month ~year:y ~month:m) in
    to_days { year = y; month = m; day }
  in
  Calendar.finite
    (List.init count (fun i ->
         let y, m = advance_month from_year from_month i in
         let y', m' = advance_month from_year from_month (i + 1) in
         Interval.make ~start:(anchor y m) ~stop:(anchor y' m')))

let pp_date ppf { year; month; day } =
  Format.fprintf ppf "%04d-%02d-%02d" year month day
