open Chronicle_core

(** Civil-calendar arithmetic for building realistic billing calendars
    (§5.1 follows [SS92, CSS94] in wanting calendars like "every
    month", whose intervals are {e not} uniform: months have 28–31
    days).

    Chronons are interpreted as day numbers; day 0 is 1970-01-01
    (proleptic Gregorian, using Howard Hinnant's civil-date
    algorithms). *)

type date = { year : int; month : int; day : int }
(** [month] 1–12, [day] 1–31. *)

val is_leap_year : int -> bool
val days_in_month : year:int -> month:int -> int

val to_days : date -> Seqnum.chronon
(** Days since 1970-01-01; raises [Invalid_argument] on invalid dates. *)

val of_days : Seqnum.chronon -> date
val day_of_week : Seqnum.chronon -> int
(** 0 = Sunday … 6 = Saturday. *)

val month_start : year:int -> month:int -> Seqnum.chronon

val months : from_year:int -> from_month:int -> count:int -> Calendar.t
(** A finite calendar of [count] consecutive calendar months — real
    month boundaries, 28/29/30/31-day widths. *)

val billing_months :
  from_year:int -> from_month:int -> count:int -> anchor_day:int -> Calendar.t
(** Billing cycles anchored on a day of the month (e.g. statements cut
    on the 15th): interval i runs from the anchor in month i to the
    anchor in month i+1.  Anchors beyond a month's length clamp to its
    last day.  Raises [Invalid_argument] unless 1 ≤ anchor_day ≤ 31. *)

val pp_date : Format.formatter -> date -> unit
