open Chronicle_core

(** Calendars: sets of time intervals over which periodic persistent
    views are instantiated (§5.1, in the spirit of [SS92, CSS94]).

    A calendar is either a finite explicit list of intervals or an
    infinite periodic generator [interval i = [start + i·stride,
    start + i·stride + width)].  With [width > stride] consecutive
    intervals overlap — the moving-window case; with [width = stride]
    they tile time — the billing-period case. *)

type t

val finite : Interval.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val periodic : start:Seqnum.chronon -> width:int -> stride:int -> t
(** Raises [Invalid_argument] unless [width > 0 && stride > 0]. *)

val tiling : start:Seqnum.chronon -> width:int -> t
(** Non-overlapping periods: [periodic ~start ~width ~stride:width]. *)

val sliding : start:Seqnum.chronon -> width:int -> t
(** One interval per chronon, each [width] long (stride 1): "for every
    day, the total over the 30 preceding days". *)

val interval : t -> int -> Interval.t option
(** The i-th interval; [None] past the end of a finite calendar or for
    negative i. *)

val is_finite : t -> bool
val interval_count : t -> int option
(** [None] for periodic (infinite) calendars. *)

val covering : t -> Seqnum.chronon -> int list
(** Indices of the intervals containing the chronon, ascending.  O(k)
    in the number k of covering intervals for periodic calendars. *)

val first_covering : t -> Seqnum.chronon -> int option

val max_concurrent : t -> int option
(** Upper bound on how many intervals can be active at one instant
    ([None] if a finite calendar is empty of overlaps... always [Some]
    here: ⌈width/stride⌉ for periodic, computed exactly for finite). *)

val pp : Format.formatter -> t -> unit

(** {2 Reification} (snapshots and tooling) *)

type spec =
  | Finite_spec of Interval.t list
  | Periodic_spec of { start : Seqnum.chronon; width : int; stride : int }

val spec : t -> spec
val of_spec : spec -> t
