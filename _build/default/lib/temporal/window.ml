open Relational
open Chronicle_core

type t = {
  func : Aggregate.func;
  width : int; (* bucket width in chronons *)
  states : Aggregate.state array; (* cyclic: slot = bucket_index mod n *)
  mutable head : int; (* absolute index of the newest (open) bucket *)
  mutable clock : Seqnum.chronon;
  mutable start : Seqnum.chronon;
  mutable closed_merge : Aggregate.state; (* merge of all non-head buckets *)
  mutable rolls : int;
}

let create ~func ~buckets ~bucket_width ~start =
  if buckets <= 0 || bucket_width <= 0 then
    invalid_arg "Window.create: buckets and bucket_width must be positive";
  {
    func;
    width = bucket_width;
    states = Array.init buckets (fun _ -> Aggregate.init func);
    head = 0;
    clock = start;
    start;
    closed_merge = Aggregate.init func;
    rolls = 0;
  }

let func t = t.func
let buckets t = Array.length t.states
let bucket_width t = t.width
let now t = t.clock
let rolls t = t.rolls

let slot t abs_index = abs_index mod Array.length t.states

let bucket_of t chronon = (chronon - t.start) / t.width

(* Recompute the cached merge of every bucket except the open head:
   O(buckets), paid once per rollover. *)
let recompute_closed_merge t =
  let n = Array.length t.states in
  let acc = ref (Aggregate.init t.func) in
  for i = 0 to n - 1 do
    if i <> slot t t.head then acc := Aggregate.merge t.func !acc t.states.(i)
  done;
  t.closed_merge <- !acc

let advance t chronon =
  if chronon < t.clock then
    invalid_arg
      (Printf.sprintf "Window.advance: chronon %d is before the clock %d"
         chronon t.clock);
  t.clock <- chronon;
  let target = bucket_of t chronon in
  if target > t.head then begin
    let n = Array.length t.states in
    (* clear every bucket skipped over (slots are reused: this is the
       space reuse that expiration dates enable in §5.1) *)
    let first_new = t.head + 1 in
    let clear_from = max first_new (target - n + 1) in
    for abs = clear_from to target do
      t.states.(slot t abs) <- Aggregate.init t.func;
      t.rolls <- t.rolls + 1
    done;
    t.head <- target;
    recompute_closed_merge t
  end

let add t chronon v =
  advance t chronon;
  let s = slot t t.head in
  t.states.(s) <- Aggregate.step t.func t.states.(s) v

let total t =
  Aggregate.final t.func
    (Aggregate.merge t.func t.closed_merge t.states.(slot t t.head))

let bucket_totals t =
  let n = Array.length t.states in
  List.init n (fun k ->
      let abs = t.head - (n - 1) + k in
      if abs < 0 then Value.Null
      else Aggregate.final t.func t.states.(slot t abs))

type dump = {
  d_start : Seqnum.chronon;
  d_head : int;
  d_clock : Seqnum.chronon;
  d_states : Aggregate.state list;
}

let dump t =
  {
    d_start = t.start;
    d_head = t.head;
    d_clock = t.clock;
    d_states = Array.to_list t.states;
  }

let load t { d_start; d_head; d_clock; d_states } =
  if List.length d_states <> Array.length t.states then
    invalid_arg "Window.load: bucket count mismatch";
  List.iteri (fun i st -> t.states.(i) <- st) d_states;
  t.start <- d_start;
  t.head <- d_head;
  t.clock <- d_clock;
  recompute_closed_merge t
