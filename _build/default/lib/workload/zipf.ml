type t = { n : int; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for rank = 1 to n do
    acc := !acc +. (1. /. (float_of_int rank ** s));
    cdf.(rank - 1) <- !acc
  done;
  let total = !acc in
  Array.iteri (fun i x -> cdf.(i) <- x /. total) cdf;
  { n; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* first index with cdf >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let n t = t.n
