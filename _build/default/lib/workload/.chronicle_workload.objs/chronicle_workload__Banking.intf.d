lib/workload/banking.mli: Relational Rng Schema Tuple Zipf
