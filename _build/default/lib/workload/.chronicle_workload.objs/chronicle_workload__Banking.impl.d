lib/workload/banking.ml: List Printf Relational Rng Schema Tuple Value Zipf
