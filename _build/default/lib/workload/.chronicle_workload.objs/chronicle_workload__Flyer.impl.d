lib/workload/flyer.ml: List Printf Relational Rng Schema Tuple Value Zipf
