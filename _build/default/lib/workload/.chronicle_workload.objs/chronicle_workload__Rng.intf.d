lib/workload/rng.mli:
