lib/workload/telecom.mli: Relational Rng Schema Tuple Zipf
