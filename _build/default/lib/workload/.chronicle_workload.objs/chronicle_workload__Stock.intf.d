lib/workload/stock.mli: Relational Rng Schema Tuple
