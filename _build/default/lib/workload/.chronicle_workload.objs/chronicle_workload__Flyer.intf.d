lib/workload/flyer.mli: Relational Rng Schema Tuple Zipf
