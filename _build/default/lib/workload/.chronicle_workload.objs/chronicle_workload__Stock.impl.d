lib/workload/stock.ml: Relational Rng Schema Tuple Value
