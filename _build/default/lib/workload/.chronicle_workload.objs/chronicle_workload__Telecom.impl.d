lib/workload/telecom.ml: List Printf Relational Rng Schema Tuple Value Zipf
