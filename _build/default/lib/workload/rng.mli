(** Deterministic pseudo-random numbers (SplitMix64).

    Benchmarks and property tests need reproducible streams that do not
    depend on OCaml's global [Random] state; every generator takes an
    explicit seeded state. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] ∈ [0, bound); raises [Invalid_argument] unless
    [bound > 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] ∈ [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] ∈ [0, bound). *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
val split : t -> t
(** An independent generator derived from this one. *)
