open Relational

(** Frequent-flyer workload (Examples 2.1/2.2 of the paper).

    One chronicle of mileage transactions; a customers relation keyed
    by account number carrying name and state of residence (New Jersey
    residents earn a 500-mile bonus per flight — the temporal-join
    example); persistent views for mileage balance, miles actually
    flown, and premier status. *)

val customer_schema : Schema.t
(** (acct:int, name:string, state:string) — key acct. *)

val mileage_schema : Schema.t
(** User schema of the mileage chronicle:
    (acct:int, flight:string, miles:int, fare:float). *)

val customers : Rng.t -> n:int -> Tuple.t list
(** [n] customers with accounts 1..n; ~25% in "NJ". *)

val mileage_event : Rng.t -> Zipf.t -> Tuple.t
(** One mileage posting; the account is Zipf-popular. *)

val states : string array
