open Relational

let trade_schema =
  Schema.make
    [ ("symbol", Value.TStr); ("shares", Value.TInt); ("price", Value.TFloat) ]

let symbols = [| "T"; "IBM"; "GE"; "XON"; "MO"; "KO"; "MRK"; "GM" |]

let trade_for rng symbol =
  let shares = 100 * Rng.int_range rng 1 50 in
  let price = 10. +. Rng.float rng 140. in
  Tuple.make [ Value.Str symbol; Value.Int shares; Value.Float price ]

let trade rng = trade_for rng (Rng.pick rng symbols)
