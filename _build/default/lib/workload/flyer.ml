open Relational

let customer_schema =
  Schema.make
    [ ("acct", Value.TInt); ("name", Value.TStr); ("state", Value.TStr) ]

let mileage_schema =
  Schema.make
    [
      ("acct", Value.TInt);
      ("flight", Value.TStr);
      ("miles", Value.TInt);
      ("fare", Value.TFloat);
    ]

let states = [| "NJ"; "NY"; "CA"; "TX"; "IL"; "WA"; "FL"; "MA" |]

let customers rng ~n =
  List.init n (fun i ->
      let acct = i + 1 in
      let state = if Rng.int rng 4 = 0 then "NJ" else Rng.pick rng states in
      Tuple.make
        [ Value.Int acct; Value.Str (Printf.sprintf "cust-%04d" acct); Value.Str state ])

let airports = [| "EWR"; "JFK"; "SFO"; "ORD"; "LAX"; "SEA"; "BOS"; "DFW" |]

let mileage_event rng zipf =
  let acct = Zipf.sample zipf rng in
  let from_ap = Rng.pick rng airports and to_ap = Rng.pick rng airports in
  let miles = Rng.int_range rng 120 3000 in
  let fare = float_of_int miles *. (0.08 +. Rng.float rng 0.3) in
  Tuple.make
    [
      Value.Int acct;
      Value.Str (Printf.sprintf "%s-%s" from_ap to_ap);
      Value.Int miles;
      Value.Float fare;
    ]
