(** Zipf-distributed sampling over \{1, …, n\}.

    Transactional streams are heavily skewed (a few customers make most
    of the calls/trades); the benchmarks use Zipf(s) key popularity to
    exercise view group tables realistically. *)

type t

val create : n:int -> s:float -> t
(** Raises [Invalid_argument] unless [n > 0] and [s >= 0].  [s = 0]
    degenerates to uniform. *)

val sample : t -> Rng.t -> int
(** A rank in [1, n]; rank 1 is the most popular. *)

val n : t -> int
