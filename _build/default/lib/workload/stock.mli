open Relational

(** Stock-trading workload (§5.1's moving-window example: "a periodic
    view for every day that computes the total number of shares of a
    stock sold during the 30 days preceding that day"). *)

val trade_schema : Schema.t
(** User schema of the trades chronicle:
    (symbol:string, shares:int, price:float). *)

val symbols : string array
val trade : Rng.t -> Tuple.t
val trade_for : Rng.t -> string -> Tuple.t
