lib/lang/parser.ml: Aggregate Array Ast Format Lexer List Option Predicate Relational String Token Value
