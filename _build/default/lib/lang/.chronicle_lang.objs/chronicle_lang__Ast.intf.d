lib/lang/ast.mli: Aggregate Format Predicate Relational Value
