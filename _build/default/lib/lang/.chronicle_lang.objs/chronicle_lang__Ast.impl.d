lib/lang/ast.ml: Aggregate Format List Predicate Printf Relational String Value
