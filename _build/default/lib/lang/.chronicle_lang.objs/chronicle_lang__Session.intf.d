lib/lang/session.mli: Chron Chronicle_core Chronicle_events Chronicle_temporal Db Detector Periodic Windowed_view
