lib/lang/analyze.mli: Ast Chronicle_core Classify Db Format Ra Relational Sca Schema Seqnum Session Tuple
