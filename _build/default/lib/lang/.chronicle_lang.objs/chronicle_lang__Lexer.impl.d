lib/lang/lexer.ml: Array Buffer Format List String Token
