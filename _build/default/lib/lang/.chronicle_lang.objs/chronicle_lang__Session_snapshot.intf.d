lib/lang/session_snapshot.mli: Session
