lib/lang/session.ml: Chron Chronicle_core Chronicle_events Chronicle_temporal Db Detector Hashtbl List Periodic Printf String Windowed_view
