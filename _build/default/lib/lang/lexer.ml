exception Lex_error of { message : string; line : int; column : int }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let error i fmt =
    Format.kasprintf
      (fun message ->
        raise (Lex_error { message; line = !line; column = i - !line_start + 1 }))
      fmt
  in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match Token.keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (Token.Ident (String.lowercase_ascii word))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let is_float =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      let text = String.sub src start (!i - start) in
      if is_float then emit (Token.Float_lit (float_of_string text))
      else emit (Token.Int_lit (int_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then error !i "unterminated string literal";
      emit (Token.Str_lit (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "<>" ->
          emit Token.Op_ne;
          i := !i + 2
      | Some "!=" ->
          emit Token.Op_ne;
          i := !i + 2
      | Some "<=" ->
          emit Token.Op_le;
          i := !i + 2
      | Some ">=" ->
          emit Token.Op_ge;
          i := !i + 2
      | _ -> (
          (match c with
          | '(' -> emit Token.Lparen
          | ')' -> emit Token.Rparen
          | ',' -> emit Token.Comma
          | ';' -> emit Token.Semicolon
          | '*' -> emit Token.Star
          | '.' -> emit Token.Dot
          | '=' -> emit Token.Op_eq
          | '<' -> emit Token.Op_lt
          | '>' -> emit Token.Op_gt
          | _ -> error !i "unexpected character %C" c);
          incr i)
    end
  done;
  emit Token.Eof;
  Array.of_list (List.rev !tokens)
