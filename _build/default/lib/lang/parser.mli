(** Recursive-descent parser for the view-definition language. *)

exception Parse_error of { message : string; line : int }

val parse : string -> Ast.stmt list
(** Parse a script: a sequence of semicolon-terminated statements. *)

val parse_select : string -> Ast.select
(** Parse a bare SELECT (testing convenience). *)
