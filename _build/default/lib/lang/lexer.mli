(** Hand-written lexer for the view-definition language. *)

exception Lex_error of { message : string; line : int; column : int }

val tokenize : string -> (Token.t * int) array
(** Tokens with their source line numbers, ending with [Eof].
    Comments run from ["--"] to end of line.  String literals use
    single quotes with [''] as the escape for a quote. *)
