test/test_lexer.ml: Array Chronicle_lang Lexer List Token Util
