test/test_db.ml: Aggregate Ca Chron Chronicle_core Classify Db Fixtures Group List Predicate Relational Sca Seqnum Stats Util Versioned View
