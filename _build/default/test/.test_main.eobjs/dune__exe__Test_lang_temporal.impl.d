test/test_lang_temporal.ml: Alcotest Analyze Ast Chronicle_core Chronicle_lang List Parser Session Util
