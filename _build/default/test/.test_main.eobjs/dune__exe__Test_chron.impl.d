test/test_chron.ml: Alcotest Chron Chronicle_core Gen Group List QCheck Relational Schema Seqnum Stats Util Value
