test/test_relation.ml: Index Predicate Relation Relational Schema Stats Util Value
