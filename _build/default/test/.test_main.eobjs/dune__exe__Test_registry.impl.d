test/test_registry.ml: Aggregate Alcotest Ca Chron Chronicle_core Fixtures List Option Predicate Printf Registry Relational Sca Seqnum Util View
