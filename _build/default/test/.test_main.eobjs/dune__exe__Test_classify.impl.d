test/test_classify.ml: Ca Chronicle_core Classify Fixtures List Relational Sca String Util
