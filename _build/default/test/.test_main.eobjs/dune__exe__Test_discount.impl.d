test/test_discount.ml: Chron Chronicle_core Delta Discount Float Gen Group List QCheck Relational Sca Schema Util Value View
