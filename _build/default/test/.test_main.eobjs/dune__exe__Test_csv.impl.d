test/test_csv.ml: Alcotest Csv_io Filename Fun Gen List QCheck Relation Relational Schema String Sys Tuple Util Value
