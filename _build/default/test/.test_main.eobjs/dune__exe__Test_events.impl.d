test/test_events.ml: Alcotest Chronicle_core Chronicle_events Db Detector Gen Hashtbl List Option Pattern Predicate Printf QCheck Relational Schema Stats Tuple Util Value
