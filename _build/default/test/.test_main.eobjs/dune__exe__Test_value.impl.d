test/test_value.ml: Gen QCheck Relational Util Value
