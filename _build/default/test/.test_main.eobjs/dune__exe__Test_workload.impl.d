test/test_workload.ml: Alcotest Array Banking Chronicle_workload Flyer Int List Relational Rng Stock Telecom Tuple Util Value Zipf
