test/test_versioned.ml: Alcotest Chronicle_core Group Predicate Relation Relational Schema Util Value Versioned
