test/test_view.ml: Aggregate Alcotest Ca Chron Chronicle_core Delta Eval Fixtures Gen Index List QCheck Relation Relational Sca Schema Seqnum Stats Tuple Util Value View
