test/test_ra.ml: Aggregate List Predicate Ra Relation Relational Schema Util Value
