test/fixtures.ml: Aggregate Ca Chron Chronicle_core Group Predicate Relation Relational Sca Schema Util Value
