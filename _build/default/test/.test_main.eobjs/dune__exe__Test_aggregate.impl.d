test/test_aggregate.ml: Aggregate List Printf QCheck Relational Schema Util Value
