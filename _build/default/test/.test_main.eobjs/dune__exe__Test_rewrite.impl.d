test/test_rewrite.ml: Aggregate Alcotest Ca Chron Chronicle_core Delta Eval Fixtures List Predicate Printf QCheck Random Registry Relational Rewrite Sca Schema Seqnum Tuple Util View
