test/test_ra_laws.ml: Aggregate Gen List Predicate QCheck Ra Relational Schema Tuple Util Value
