test/test_session_snapshot.ml: Alcotest Analyze Chronicle_lang Filename Fun List Session Session_snapshot Sys Util
