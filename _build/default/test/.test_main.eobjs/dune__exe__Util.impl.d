test/util.ml: Alcotest Format List QCheck QCheck_alcotest Relational Tuple Value
