test/test_periodic.ml: Aggregate Alcotest Ca Calendar Chronicle_core Chronicle_temporal Db List Periodic Relational Sca Schema Util Value View
