test/test_lang_events.ml: Alcotest Analyze Ast Chronicle_lang List Parser Relational Session Tuple Util
