test/test_ca.ml: Aggregate Alcotest Ca Chron Chronicle_core Fixtures Group List Predicate Relational Schema Seqnum Util
