test/test_baseline.ml: Aggregate Ca Chron Chronicle_baseline Chronicle_core Delta Delta_ra Fixtures Group List Naive Relational Sca Schema Stats Summary_fields Tuple Util Value View
