test/test_analyze.ml: Alcotest Analyze Ca Chronicle_core Chronicle_lang Classify Db List Parser Predicate Registry Relational Sca Session Util
