test/test_groupby.ml: Aggregate Alcotest Groupby List QCheck Relational Schema Tuple Util Value
