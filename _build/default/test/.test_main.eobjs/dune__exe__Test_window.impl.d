test/test_window.ml: Aggregate Alcotest Chronicle_temporal Gen List QCheck Relational Util Value Window
