test/test_index.ml: Alcotest Index Int List Relational Stats Util
