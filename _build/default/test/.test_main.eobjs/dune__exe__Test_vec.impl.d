test/test_vec.ml: Alcotest List Relational Util Vec
