test/test_audit.ml: Aggregate Alcotest Audit Ca Chron Chronicle_core Db Delta Fixtures List Relational Sca Util View
