test/test_temporal.ml: Alcotest Calendar Chronicle_temporal Fun Interval List QCheck Util
