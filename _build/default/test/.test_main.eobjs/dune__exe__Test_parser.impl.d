test/test_parser.ml: Aggregate Alcotest Ast Chronicle_lang Lexer List Parser Relational Util Value
