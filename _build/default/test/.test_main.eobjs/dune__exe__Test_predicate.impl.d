test/test_predicate.ml: Alcotest Predicate Relational Schema Util Value
