test/test_btree.ml: Alcotest Btree Int List Map Printf QCheck Relational Stats Util
