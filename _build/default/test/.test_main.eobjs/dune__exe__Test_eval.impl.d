test/test_eval.ml: Aggregate Ca Chron Chronicle_core Eval Fixtures List Predicate Relational Seqnum Util
