test/test_sexp.ml: Aggregate Float Gen List Printf QCheck Relational Sexp Util Value
