test/test_delta.ml: Aggregate Ca Chron Chronicle_core Delta Eval Fixtures Group List Predicate Printf QCheck Random Relation Relational Schema Seqnum Stats Tuple Util
