test/test_tuple.ml: List QCheck Relational Schema Tuple Util Value
