test/test_gregorian.ml: Alcotest Ca Calendar Chronicle_core Chronicle_temporal Db Gregorian Interval Option Periodic QCheck Relational Sca Util View
