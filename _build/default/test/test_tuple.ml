open Relational
open Util

let s = Schema.make [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ]
let t1 = tup [ vi 1; vs "x"; vf 2.5 ]

let test_access () =
  check_int "arity" 3 (Tuple.arity t1);
  check_value "get" (vs "x") (Tuple.get t1 1);
  check_value "field" (vf 2.5) (Tuple.field s t1 "c")

let test_project () =
  check_tuple "project" (tup [ vf 2.5; vi 1 ]) (Tuple.project s [ "c"; "a" ] t1);
  let proj = Tuple.projector s [ "b" ] in
  check_tuple "projector" (tup [ vs "x" ]) (proj t1)

let test_concat_remove () =
  check_tuple "concat" (tup [ vi 1; vs "x"; vf 2.5; vi 9 ])
    (Tuple.concat t1 (tup [ vi 9 ]));
  check_tuple "remove" (tup [ vi 1; vf 2.5 ]) (Tuple.remove s "b" t1)

let test_type_check () =
  check_bool "ok" true (Tuple.type_check s t1);
  check_bool "null ok" true (Tuple.type_check s (tup [ Value.Null; vs "x"; vf 1. ]));
  check_bool "wrong type" false (Tuple.type_check s (tup [ vs "no"; vs "x"; vf 1. ]));
  check_bool "wrong arity" false (Tuple.type_check s (tup [ vi 1 ]))

let test_compare () =
  check_bool "lex order" true (Tuple.compare (tup [ vi 1; vi 2 ]) (tup [ vi 1; vi 3 ]) < 0);
  check_bool "prefix shorter" true (Tuple.compare (tup [ vi 1 ]) (tup [ vi 1; vi 0 ]) < 0);
  check_bool "equal" true (Tuple.equal t1 (tup [ vi 1; vs "x"; vf 2.5 ]))

let test_dedup_diff () =
  let a = tup [ vi 1 ] and b = tup [ vi 2 ] and c = tup [ vi 3 ] in
  check_tuples "dedup" [ a; b ] (Tuple.dedup [ a; b; a; b; a ]);
  check_tuples "diff" [ a; c ] (Tuple.diff [ a; b; c; a ] [ b ]);
  check_tuples "diff all" [] (Tuple.diff [ a ] [ a ]);
  check_tuples "diff empty right" [ a; b ] (Tuple.diff [ a; b ] [])

let qcheck_dedup_idempotent =
  let gen = QCheck.(list (map (fun i -> tup [ vi (i mod 5) ]) small_int)) in
  qtest "dedup is idempotent and subset-preserving" gen (fun l ->
      let d = Tuple.dedup l in
      List.equal Tuple.equal d (Tuple.dedup d)
      && List.for_all (fun t -> List.exists (Tuple.equal t) l) d
      && List.for_all (fun t -> List.exists (Tuple.equal t) d) l)

let suite =
  [
    test "access" test_access;
    test "projection" test_project;
    test "concat/remove" test_concat_remove;
    test "type check" test_type_check;
    test "lexicographic compare" test_compare;
    test "dedup and set difference" test_dedup_diff;
    qcheck_dedup_idempotent;
  ]
