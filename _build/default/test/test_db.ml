open Relational
open Chronicle_core
open Util

let mileage_schema = Fixtures.mileage_schema
let mile = Fixtures.mile

let setup () =
  let db = Db.create () in
  let _c = Db.add_chronicle db ~name:"mileage" mileage_schema in
  let cust =
    Db.add_relation db ~name:"customers" ~schema:Fixtures.customer_schema
      ~key:[ "cust" ] ()
  in
  Versioned.insert cust (tup [ vi 1; vs "NJ" ]);
  Versioned.insert cust (tup [ vi 2; vs "NY" ]);
  db

let balance_def db =
  Sca.define ~name:"balance"
    ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
    (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))

let test_catalog () =
  let db = setup () in
  check_string "group" "main" (Group.name (Db.default_group db));
  check_string "chronicle" "mileage" (Chron.name (Db.chronicle db "mileage"));
  check_string "relation" "customers" (Versioned.name (Db.relation db "customers"));
  check_raises_any "unknown chronicle" (fun () -> ignore (Db.chronicle db "nope"));
  check_raises_any "duplicate chronicle" (fun () ->
      ignore (Db.add_chronicle db ~name:"mileage" mileage_schema));
  check_raises_any "unknown view" (fun () -> ignore (Db.view db "nope"))

let test_append_maintains_views () =
  let db = setup () in
  ignore (Db.define_view db (balance_def db));
  ignore (Db.append db "mileage" [ mile 1 100 10. ]);
  ignore (Db.append db "mileage" [ mile 2 200 20.; mile 1 50 5. ]);
  check_bool "acct 1" true
    (Db.summary db ~view:"balance" [ vi 1 ] = Some (tup [ vi 1; vi 150 ]));
  check_bool "acct 2" true
    (Db.summary db ~view:"balance" [ vi 2 ] = Some (tup [ vi 2; vi 200 ]));
  check_int "contents" 2 (List.length (Db.view_contents db "balance"))

let test_view_over_existing_history () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage" mileage_schema);
  ignore (Db.append db "mileage" [ mile 1 100 10. ]);
  ignore (Db.define_view db (balance_def db));
  check_bool "initialized from history" true
    (Db.summary db ~view:"balance" [ vi 1 ] = Some (tup [ vi 1; vi 100 ]));
  ignore (Db.append db "mileage" [ mile 1 11 1. ]);
  check_bool "then maintained" true
    (Db.summary db ~view:"balance" [ vi 1 ] = Some (tup [ vi 1; vi 111 ]))

let test_define_view_rejects_outside_limit () =
  let db = setup () in
  let c = Db.chronicle db "mileage" in
  let bad =
    Sca.define ~allow_non_ca:true ~name:"bad"
      ~body:(Ca.CrossChron (Ca.Chronicle c, Ca.Chronicle c))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]))
  in
  check_raises_any "IM-C^k rejected" (fun () -> ignore (Db.define_view db bad));
  (* a stricter database can also refuse full CA *)
  let cust = Versioned.relation (Db.relation db "customers") in
  let full_ca =
    Sca.define ~name:"by_state"
      ~body:(Ca.ProductRel (Ca.Chronicle c, cust))
      (Sca.Group_agg ([ "state" ], [ Aggregate.count_star "n" ]))
  in
  check_raises_any "tier_limit IM-log(R) refuses CA" (fun () ->
      ignore (Db.define_view db ~tier_limit:Classify.IM_log_r full_ca))

let test_temporal_join_via_db () =
  let db = setup () in
  let c = Db.chronicle db "mileage" in
  let cust = Db.relation db "customers" in
  let def =
    Sca.define ~name:"by_state"
      ~body:(Ca.KeyJoinRel (Ca.Chronicle c, Versioned.relation cust, [ ("acct", "cust") ]))
      (Sca.Group_agg ([ "state" ], [ Aggregate.sum "miles" "m" ]))
  in
  ignore (Db.define_view db def);
  ignore (Db.append db "mileage" [ mile 1 100 10. ]);
  (* proactive move NJ -> CA, then another posting *)
  Versioned.update_where cust Predicate.("cust" =% vi 1) (fun _ -> tup [ vi 1; vs "CA" ]);
  ignore (Db.append db "mileage" [ mile 1 60 6. ]);
  check_bool "NJ kept the old posting" true
    (Db.summary db ~view:"by_state" [ vs "NJ" ] = Some (tup [ vs "NJ"; vi 100 ]));
  check_bool "CA got the new posting" true
    (Db.summary db ~view:"by_state" [ vs "CA" ] = Some (tup [ vs "CA"; vi 60 ]))

let test_future_effective_update_via_append_path () =
  let db = setup () in
  let c = Db.chronicle db "mileage" in
  let cust = Db.relation db "customers" in
  let def =
    Sca.define ~name:"by_state"
      ~body:(Ca.KeyJoinRel (Ca.Chronicle c, Versioned.relation cust, [ ("acct", "cust") ]))
      (Sca.Group_agg ([ "state" ], [ Aggregate.sum "miles" "m" ]))
  in
  ignore (Db.define_view db def);
  (* schedule the move to become effective at sn 2 *)
  Versioned.update_where cust ~effective:2 Predicate.("cust" =% vi 1) (fun _ ->
      tup [ vi 1; vs "CA" ]);
  ignore (Db.append db "mileage" [ mile 1 100 10. ]);
  (* sn 1: NJ *)
  ignore (Db.append db "mileage" [ mile 1 60 6. ]);
  (* sn 2: should see NJ still? effective=2 means visible to sn > 2 *)
  ignore (Db.append db "mileage" [ mile 1 40 4. ]);
  (* sn 3: CA *)
  check_bool "sn1+sn2 in NJ" true
    (Db.summary db ~view:"by_state" [ vs "NJ" ] = Some (tup [ vs "NJ"; vi 160 ]));
  check_bool "sn3 in CA" true
    (Db.summary db ~view:"by_state" [ vs "CA" ] = Some (tup [ vs "CA"; vi 40 ]))

let test_multi_chronicle_batch () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"a" mileage_schema);
  ignore (Db.add_chronicle db ~name:"b" mileage_schema);
  let ca = Db.chronicle db "a" and cb = Db.chronicle db "b" in
  let def =
    Sca.define ~name:"both"
      ~body:(Ca.Union (Ca.Chronicle ca, Ca.Chronicle cb))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]))
  in
  ignore (Db.define_view db def);
  let sn = Db.append_multi db [ ("a", [ mile 1 1 1. ]); ("b", [ mile 1 2 2. ]) ] in
  check_int "one sn" 1 sn;
  (* the view was maintained exactly once with the whole batch *)
  check_bool "count 2" true
    (Db.summary db ~view:"both" [ vi 1 ] = Some (tup [ vi 1; vi 2 ]));
  check_int "one batch" 1 (View.maintained_batches (Db.view db "both"))

let test_maintenance_not_doubled () =
  (* a view over two chronicles appended in one batch must fold the
     batch once, not once per chronicle *)
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"a" mileage_schema);
  ignore (Db.add_chronicle db ~name:"b" mileage_schema);
  let ca = Db.chronicle db "a" and cb = Db.chronicle db "b" in
  let left = Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle ca) in
  let right = Ca.Project ([ Seqnum.attr; "miles" ], Ca.Chronicle cb) in
  let def =
    Sca.define ~name:"joined" ~body:(Ca.SeqJoin (left, right))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))
  in
  ignore (Db.define_view db def);
  ignore (Db.append_multi db [ ("a", [ mile 7 0 0. ]); ("b", [ mile 0 500 0. ]) ]);
  check_bool "joined once" true
    (Db.summary db ~view:"joined" [ vi 7 ] = Some (tup [ vi 7; vi 500 ]));
  check_int "single maintenance" 1 (View.maintained_batches (Db.view db "joined"))

let test_summary_query_cost () =
  let db = setup () in
  ignore (Db.define_view db (balance_def db));
  for i = 1 to 200 do
    ignore (Db.append db "mileage" [ mile (i mod 10 + 1) i 1. ])
  done;
  let before = Stats.snapshot () in
  ignore (Db.summary db ~view:"balance" [ vi 5 ]);
  let after = Stats.snapshot () in
  check_int "summary query reads no chronicle" 0
    (Stats.diff_get before after Stats.Chronicle_scan);
  check_bool "O(1) work" true (Stats.diff_get before after Stats.Group_lookup <= 1)

let test_classify_view () =
  let db = setup () in
  ignore (Db.define_view db (balance_def db));
  let r = Db.classify_view db "balance" in
  check_bool "SCA_1" true (r.Classify.view_im = Classify.IM_constant)

let test_drop_view () =
  let db = setup () in
  ignore (Db.define_view db (balance_def db));
  ignore (Db.append db "mileage" [ mile 1 10 1. ]);
  Db.drop_view db "balance";
  check_raises_any "gone" (fun () -> ignore (Db.view db "balance"));
  (* appends after the drop do not crash and maintain nothing *)
  ignore (Db.append db "mileage" [ mile 1 10 1. ]);
  check_raises_any "drop twice" (fun () -> Db.drop_view db "balance")

let test_multiple_groups_isolated () =
  let db = Db.create () in
  ignore (Db.add_group db "other");
  ignore (Db.add_chronicle db ~name:"a" mileage_schema);
  ignore (Db.add_chronicle db ~group:"other" ~name:"b" mileage_schema);
  let sn_a = Db.append db "a" [ mile 1 1 1. ] in
  let sn_b = Db.append db "b" [ mile 1 1 1. ] in
  (* each group issues its own sequence numbers *)
  check_int "group a sn" 1 sn_a;
  check_int "group b sn" 1 sn_b;
  check_int "watermark main" 1 (Group.watermark (Db.group db "main"));
  check_int "watermark other" 1 (Group.watermark (Db.group db "other"));
  (* clocks are independent too *)
  Db.advance_clock db ~group:"other" 50;
  check_int "main clock untouched" 0 (Group.now (Db.group db "main"));
  (* cross-group algebra is rejected at definition *)
  let bad =
    Ca.Union (Ca.Chronicle (Db.chronicle db "a"), Ca.Chronicle (Db.chronicle db "b"))
  in
  check_raises_any "cross-group view rejected" (fun () ->
      ignore
        (Db.define_view db
           (Sca.define ~name:"bad" ~body:bad
              (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ])))))

let suite =
  [
    test "catalog operations" test_catalog;
    test "appends maintain persistent views" test_append_maintains_views;
    test "views defined over existing history" test_view_over_existing_history;
    test "IM tier limit enforced at definition" test_define_view_rejects_outside_limit;
    test "temporal join through the append path" test_temporal_join_via_db;
    test "future-effective relation updates" test_future_effective_update_via_append_path;
    test "multi-chronicle batches share one sn" test_multi_chronicle_batch;
    test "multi-chronicle view maintained once per batch" test_maintenance_not_doubled;
    test "summary queries cost O(1), no chronicle access" test_summary_query_cost;
    test "classification of a registered view" test_classify_view;
    test "drop_view" test_drop_view;
    test "multiple groups are isolated" test_multiple_groups_isolated;
  ]
