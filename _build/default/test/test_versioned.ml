open Relational
open Chronicle_core
open Util

let schema = Schema.make [ ("cust", Value.TInt); ("state", Value.TStr) ]

let mk () =
  let group = Group.create "g" in
  let v = Versioned.create ~group ~name:"customers" ~schema ~key:[ "cust" ] () in
  (group, v)

let test_insert_now () =
  let _, v = mk () in
  Versioned.insert v (tup [ vi 1; vs "NJ" ]);
  check_int "inserted" 1 (Relation.cardinality (Versioned.relation v));
  check_int "logged" 1 (Versioned.log_length v)

let test_retroactive_rejected () =
  let group, v = mk () in
  ignore (Group.next_sn group);
  ignore (Group.next_sn group);
  (* watermark 2 *)
  Alcotest.check_raises "retroactive insert"
    (Versioned.Retroactive_update { effective = 1; watermark = 2 })
    (fun () -> Versioned.insert v ~effective:1 (tup [ vi 1; vs "NJ" ]));
  check_int "nothing applied" 0 (Relation.cardinality (Versioned.relation v))

let test_future_effective_queued () =
  let group, v = mk () in
  Versioned.insert v (tup [ vi 1; vs "NJ" ]);
  Versioned.update_where v ~effective:5 Predicate.("cust" =% vi 1) (fun _ ->
      tup [ vi 1; vs "NY" ]);
  check_int "queued" 1 (Versioned.pending_count v);
  check_bool "not yet applied" true
    (Relation.find_by_key (Versioned.relation v) [ vi 1 ] = Some (tup [ vi 1; vs "NJ" ]));
  ignore (Group.next_sn group);
  Versioned.flush_pending v ~upto:4;
  check_int "still queued" 1 (Versioned.pending_count v);
  Versioned.flush_pending v ~upto:5;
  check_int "applied" 0 (Versioned.pending_count v);
  check_bool "now NY" true
    (Relation.find_by_key (Versioned.relation v) [ vi 1 ] = Some (tup [ vi 1; vs "NY" ]))

let test_pending_order () =
  let _, v = mk () in
  Versioned.insert v ~effective:10 (tup [ vi 3; vs "TX" ]);
  Versioned.insert v ~effective:5 (tup [ vi 2; vs "CA" ]);
  Versioned.flush_pending v ~upto:5;
  check_int "only the earlier applied" 1 (Relation.cardinality (Versioned.relation v));
  Versioned.flush_pending v ~upto:10;
  check_int "both applied" 2 (Relation.cardinality (Versioned.relation v))

let test_as_of () =
  let group, v = mk () in
  (* watermark 0: insert NJ *)
  Versioned.insert v (tup [ vi 1; vs "NJ" ]);
  ignore (Group.next_sn group);
  ignore (Group.next_sn group);
  (* watermark 2: move to NY *)
  Versioned.update_where v Predicate.("cust" =% vi 1) (fun _ -> tup [ vi 1; vs "NY" ]);
  ignore (Group.next_sn group);
  (* watermark 3: delete *)
  Versioned.delete_where v Predicate.("cust" =% vi 1);
  check_tuples "as of sn 1 (sees watermark-0 insert)"
    [ tup [ vi 1; vs "NJ" ] ]
    (Versioned.as_of v 1);
  check_tuples "as of sn 2 (before the move)"
    [ tup [ vi 1; vs "NJ" ] ]
    (Versioned.as_of v 2);
  check_tuples "as of sn 3 (after the move)"
    [ tup [ vi 1; vs "NY" ] ]
    (Versioned.as_of v 3);
  check_tuples "as of sn 4 (after the delete)" [] (Versioned.as_of v 4)

let test_as_of_disabled () =
  let group = Group.create "g" in
  let v =
    Versioned.create ~group ~name:"r" ~schema ~key:[ "cust" ] ~track_history:false ()
  in
  Versioned.insert v (tup [ vi 1; vs "NJ" ]);
  check_int "no log" 0 (Versioned.log_length v);
  check_raises_any "as_of raises" (fun () -> ignore (Versioned.as_of v 1))

let test_delete_where_now () =
  let _, v = mk () in
  Versioned.insert v (tup [ vi 1; vs "NJ" ]);
  Versioned.insert v (tup [ vi 2; vs "NJ" ]);
  Versioned.insert v (tup [ vi 3; vs "CA" ]);
  Versioned.delete_where v Predicate.("state" =% vs "NJ");
  check_int "two deleted" 1 (Relation.cardinality (Versioned.relation v))

let suite =
  [
    test "insert effective now" test_insert_now;
    test "retroactive updates rejected (§2.3)" test_retroactive_rejected;
    test "future-effective updates queued" test_future_effective_queued;
    test "pending queue applies in effective order" test_pending_order;
    test "as-of reconstruction" test_as_of;
    test "history tracking can be disabled" test_as_of_disabled;
    test "delete_where now" test_delete_where_now;
  ]
