open Relational
open Chronicle_core
open Util
open Fixtures

let feed fx view batches =
  List.iter
    (fun tuples ->
      let sn = Chron.append fx.mileage tuples in
      let tagged = List.map (Chron.tag sn) tuples in
      let delta = Delta.eval (Sca.body (View.def view)) ~sn ~batch:[ (fx.mileage, tagged) ] in
      View.apply_delta view delta)
    batches

let test_sca_definition_validation () =
  let fx = make () in
  check_raises_any "projection keeping sn rejected" (fun () ->
      ignore
        (Sca.define ~name:"bad" ~body:(Ca.Chronicle fx.mileage)
           (Sca.Project_out [ Seqnum.attr; "acct" ])));
  check_raises_any "grouping on sn rejected" (fun () ->
      ignore
        (Sca.define ~name:"bad" ~body:(Ca.Chronicle fx.mileage)
           (Sca.Group_agg ([ Seqnum.attr ], [ Aggregate.count_star "n" ]))));
  check_raises_any "ill-formed body rejected" (fun () ->
      ignore
        (Sca.define ~name:"bad"
           ~body:(Ca.Project ([ "acct" ], Ca.Chronicle fx.mileage))
           (Sca.Project_out [ "acct" ])))

let test_schema () =
  let fx = make () in
  let def = balance_def fx in
  let s = Sca.schema def in
  check_int "arity" 2 (Schema.arity s);
  check_bool "no sn" false (Schema.mem s Seqnum.attr);
  Alcotest.check (Alcotest.list Alcotest.string) "key" [ "acct" ] (Sca.group_attrs def)

let test_group_agg_maintenance () =
  let fx = make () in
  let view = View.create (balance_def fx) in
  feed fx view [ [ mile 1 100 10. ]; [ mile 2 200 20.; mile 1 50 5. ]; [ mile 1 7 1. ] ];
  check_int "two groups" 2 (View.size view);
  check_bool "acct 1 balance" true
    (View.lookup view [ vi 1 ] = Some (tup [ vi 1; vi 157 ]));
  check_bool "acct 2 balance" true
    (View.lookup view [ vi 2 ] = Some (tup [ vi 2; vi 200 ]));
  check_bool "missing group" true (View.lookup view [ vi 99 ] = None);
  check_int "batches" 3 (View.maintained_batches view)

let test_matches_batch_summarization () =
  let fx = make () in
  let def =
    Sca.define ~name:"stats" ~body:(keyjoin_body fx)
      (Sca.Group_agg
         ( [ "state" ],
           [ Aggregate.sum "miles" "m"; Aggregate.count_star "n"; Aggregate.avg "fare" "f" ] ))
  in
  let view = View.create def in
  feed fx view
    [ [ mile 1 100 10. ]; [ mile 2 200 20. ]; [ mile 3 50 5.; mile 4 10 1. ] ];
  check_tuples "incremental = batch"
    (Sca.eval_summarize def (Eval.eval (Sca.body def)))
    (View.to_list view)

let test_project_out_view () =
  let fx = make () in
  let def =
    Sca.define ~name:"accts_seen" ~body:(Ca.Chronicle fx.mileage)
      (Sca.Project_out [ "acct" ])
  in
  let view = View.create def in
  feed fx view [ [ mile 1 100 10. ]; [ mile 1 50 5. ]; [ mile 2 9 1. ] ];
  check_int "set semantics" 2 (View.size view);
  check_tuples "contents" [ tup [ vi 1 ]; tup [ vi 2 ] ] (View.to_list view);
  check_bool "member" true (View.lookup view [ vi 1 ] <> None);
  check_bool "non-member" true (View.lookup view [ vi 7 ] = None)

let test_tree_backing_ordered () =
  let fx = make () in
  let view = View.create ~index:Index.Ordered (balance_def fx) in
  feed fx view [ [ mile 3 30 3. ]; [ mile 1 10 1. ]; [ mile 2 20 2. ] ];
  Alcotest.check (Alcotest.list Alcotest.int) "key-ordered listing" [ 1; 2; 3 ]
    (List.map (fun t -> Value.to_int (Tuple.get t 0)) (View.to_list view))

let test_hash_and_tree_agree () =
  let fx = make () in
  let vh = View.create ~index:Index.Hash (balance_def fx) in
  let vt = View.create ~index:Index.Ordered (balance_def fx) in
  List.iter
    (fun tuples ->
      let sn = Chron.append fx.mileage tuples in
      let tagged = List.map (Chron.tag sn) tuples in
      let delta =
        Delta.eval (Sca.body (View.def vh)) ~sn ~batch:[ (fx.mileage, tagged) ]
      in
      View.apply_delta vh delta;
      View.apply_delta vt delta)
    [ [ mile 1 100 10. ]; [ mile 5 1 1.; mile 2 2 2. ]; [ mile 1 10 1. ] ];
  check_tuples "same contents" (View.to_list vh) (View.to_list vt)

let test_maintenance_touches_no_chronicle () =
  let fx = make () in
  let view = View.create (balance_def fx) in
  feed fx view [ [ mile 1 1 1. ] ];
  let before = Stats.snapshot () in
  feed fx view [ [ mile 1 2 2. ]; [ mile 9 3 3. ] ];
  let after = Stats.snapshot () in
  check_int "Theorem 4.4: no chronicle access during maintenance" 0
    (Stats.diff_get before after Stats.Chronicle_scan)

let test_materialize () =
  let fx = make () in
  let view = View.create (balance_def fx) in
  feed fx view [ [ mile 1 100 10. ]; [ mile 2 50 5. ] ];
  let rel = View.materialize view in
  check_int "copied" 2 (Relation.cardinality rel);
  (* materialization is a snapshot: further maintenance does not touch it *)
  feed fx view [ [ mile 3 1 1. ] ];
  check_int "snapshot" 2 (Relation.cardinality rel);
  check_int "view moved on" 3 (View.size view)

let test_of_initial () =
  let fx = make () in
  (* history exists before the view is defined *)
  ignore (Chron.append fx.mileage [ mile 1 100 10. ]);
  ignore (Chron.append fx.mileage [ mile 2 200 20. ]);
  let def = balance_def fx in
  let view = View.of_initial def (Eval.eval (Sca.body def)) in
  check_int "initialized" 2 (View.size view);
  check_bool "values" true (View.lookup view [ vi 1 ] = Some (tup [ vi 1; vi 100 ]))

let qcheck_view_equals_batch =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 15)
        (list_of_size (Gen.int_range 1 3)
           (pair (int_range 1 6) (int_bound 100))))
  in
  qtest "Group_agg view = batch GROUPBY after any stream" gen (fun stream ->
      let fx = make () in
      let def = balance_def fx in
      let view = View.create def in
      List.iter
        (fun batch ->
          let tuples = List.map (fun (a, m) -> mile a m 1.) batch in
          let sn = Chron.append fx.mileage tuples in
          let tagged = List.map (Chron.tag sn) tuples in
          View.apply_delta view
            (Delta.eval (Sca.body def) ~sn ~batch:[ (fx.mileage, tagged) ]))
        stream;
      let batch_result = Sca.eval_summarize def (Eval.eval (Sca.body def)) in
      List.equal Tuple.equal
        (sorted_tuples (View.to_list view))
        (sorted_tuples batch_result))

let test_dump_load_errors () =
  let fx = make () in
  let def = balance_def fx in
  let view = View.create def in
  feed fx view [ [ mile 1 100 10. ] ];
  let dumped = View.dump view in
  (* load into a non-empty view *)
  check_raises_any "non-empty target" (fun () -> View.load view dumped);
  (* shape mismatch: group dump into a projection view *)
  let proj =
    View.create
      (Sca.define ~name:"p" ~body:(Ca.Chronicle fx.mileage)
         (Sca.Project_out [ "acct" ]))
  in
  check_raises_any "shape mismatch" (fun () -> View.load proj dumped);
  (* state arity mismatch *)
  let fresh = View.create def in
  (match dumped with
  | View.Groups_dump groups ->
      let broken =
        View.Groups_dump (List.map (fun (k, states) -> (k, states @ states)) groups)
      in
      check_raises_any "arity mismatch" (fun () -> View.load fresh broken)
  | View.Rows_dump _ -> Alcotest.fail "expected groups");
  (* and a clean load works *)
  View.load fresh dumped;
  check_tuples "restored" (View.to_list view) (View.to_list fresh)

let suite =
  [
    test "SCA definition validation (Def 4.3)" test_sca_definition_validation;
    test "dump/load validation" test_dump_load_errors;
    test "view schema and key" test_schema;
    test "grouped aggregation maintenance" test_group_agg_maintenance;
    test "incremental = batch summarization (with key join)" test_matches_batch_summarization;
    test "projection views use set semantics" test_project_out_view;
    test "tree backing lists in key order" test_tree_backing_ordered;
    test "hash and tree backings agree" test_hash_and_tree_agree;
    test "maintenance reads no chronicle (Thm 4.4)" test_maintenance_touches_no_chronicle;
    test "materialize snapshots" test_materialize;
    test "of_initial folds existing history" test_of_initial;
    qcheck_view_equals_batch;
  ]
