open Chronicle_lang
open Util

let toks src = Array.to_list (Array.map fst (Lexer.tokenize src))

let test_keywords_case_insensitive () =
  check_bool "upper" true (toks "SELECT" = [ Token.Kw_select; Token.Eof ]);
  check_bool "lower" true (toks "select" = [ Token.Kw_select; Token.Eof ]);
  check_bool "mixed" true (toks "SeLeCt" = [ Token.Kw_select; Token.Eof ])

let test_identifiers_lowercased () =
  check_bool "ident" true (toks "Mileage" = [ Token.Ident "mileage"; Token.Eof ]);
  check_bool "underscore" true
    (toks "total_expenses" = [ Token.Ident "total_expenses"; Token.Eof ])

let test_numbers () =
  check_bool "int" true (toks "42" = [ Token.Int_lit 42; Token.Eof ]);
  check_bool "negative" true (toks "-7" = [ Token.Int_lit (-7); Token.Eof ]);
  check_bool "float" true (toks "2.5" = [ Token.Float_lit 2.5; Token.Eof ]);
  check_bool "negative float" true (toks "-0.5" = [ Token.Float_lit (-0.5); Token.Eof ])

let test_strings () =
  check_bool "simple" true (toks "'NJ'" = [ Token.Str_lit "NJ"; Token.Eof ]);
  check_bool "escaped quote" true
    (toks "'it''s'" = [ Token.Str_lit "it's"; Token.Eof ]);
  check_raises_any "unterminated" (fun () -> ignore (toks "'oops"))

let test_operators () =
  check_bool "ops" true
    (toks "= <> <= < >= > != *"
    = [
        Token.Op_eq; Token.Op_ne; Token.Op_le; Token.Op_lt; Token.Op_ge;
        Token.Op_gt; Token.Op_ne; Token.Star; Token.Eof;
      ])

let test_comments_and_lines () =
  let lexed = Lexer.tokenize "select -- a comment\nfrom" in
  check_bool "comment skipped" true
    (Array.to_list (Array.map fst lexed) = [ Token.Kw_select; Token.Kw_from; Token.Eof ]);
  check_int "line tracking" 2 (snd lexed.(1))

let test_bad_char () =
  check_raises_any "unexpected char" (fun () -> ignore (toks "@"))

let test_full_statement () =
  let got =
    toks "DEFINE VIEW v AS SELECT acct, SUM(miles) AS m FROM CHRONICLE t;"
  in
  check_int "token count" 18 (List.length got)

let suite =
  [
    test "keywords are case-insensitive" test_keywords_case_insensitive;
    test "identifiers normalize to lowercase" test_identifiers_lowercased;
    test "integer and float literals" test_numbers;
    test "string literals with '' escape" test_strings;
    test "operators" test_operators;
    test "comments and line numbers" test_comments_and_lines;
    test "unexpected characters rejected" test_bad_char;
    test "full statement tokenizes" test_full_statement;
  ]
