(* Whole-session snapshots: periodic families, windowed views and
   detector state survive the save/load cycle and keep evolving
   identically afterwards. *)

open Chronicle_lang
open Util

let build () =
  let session = Session.create () in
  ignore
    (Analyze.run_script session
       "CREATE CHRONICLE trades (symbol STRING, shares INT);\n\
        DEFINE VIEW volume AS SELECT symbol, SUM(shares) AS total FROM \
        CHRONICLE trades GROUP BY symbol;\n\
        DEFINE PERIODIC VIEW monthly AS SELECT symbol, SUM(shares) AS s FROM \
        CHRONICLE trades GROUP BY symbol CALENDAR TILING START 0 WIDTH 10 \
        EXPIRE 50;\n\
        DEFINE WINDOWED VIEW recent BUCKETS 5 AS SELECT symbol, SUM(shares) \
        AS s FROM CHRONICLE trades GROUP BY symbol;\n\
        DEFINE RULE burst ON trades KEY (symbol) WITHIN 4 COOLDOWN 6 WHEN \
        REPEAT 2 EVENT t (shares > 50);\n\
        APPEND INTO trades VALUES ('T', 100);\n\
        ADVANCE CLOCK TO 3;\n\
        APPEND INTO trades VALUES ('T', 60);\n\
        ADVANCE CLOCK TO 12;\n\
        APPEND INTO trades VALUES ('GE', 80);");
  session

let run_both session session' src =
  let a = Analyze.run_script session src in
  let b = Analyze.run_script session' src in
  (a, b)

let rows = function
  | Analyze.Rows (_, tuples) -> tuples
  | _ -> Alcotest.fail "expected rows"

let test_roundtrip_and_continuation () =
  let session = build () in
  let session' = Session_snapshot.load (Session_snapshot.save session) in
  (* every queryable surface answers identically, now ... *)
  let compare_on src =
    let a, b = run_both session session' src in
    List.iter2
      (fun ra rb -> check_tuples ("same " ^ src) (rows ra) (rows rb))
      a b
  in
  compare_on "SHOW VIEW volume;";
  compare_on "SHOW PERIODIC monthly AT 0;";
  compare_on "SHOW PERIODIC monthly;";
  compare_on "SHOW WINDOWED recent;";
  compare_on "SHOW ALERTS;";
  (* ... and after identical further activity: the partial instance for
     GE (one shares>50 event at chronon 12) must have survived, so a
     second event completes the burst in both sessions *)
  let more =
    "ADVANCE CLOCK TO 14;\nAPPEND INTO trades VALUES ('GE', 70);\nSHOW ALERTS;"
  in
  let a, b = run_both session session' more in
  let alerts r = rows (List.nth r 2) in
  check_tuples "alerts agree after continuation" (alerts a) (alerts b);
  check_int "the GE burst fired" 2 (List.length (alerts a));
  compare_on "SHOW VIEW volume;";
  compare_on "SHOW WINDOWED recent;";
  compare_on "SHOW PERIODIC monthly;"

let test_cooldown_survives () =
  let session = build () in
  (* fire the burst for T, then snapshot inside the cooldown window *)
  ignore
    (Analyze.run_script session
       "ADVANCE CLOCK TO 15;\nAPPEND INTO trades VALUES ('T', 90), ('T', 95);");
  let before = List.length (rows (List.hd (Analyze.run_script session "SHOW ALERTS;"))) in
  check_bool "T burst fired" true (before >= 1);
  let session' = Session_snapshot.load (Session_snapshot.save session) in
  (* still cooling: an immediate new pair must not fire in either *)
  let again =
    "ADVANCE CLOCK TO 16;\nAPPEND INTO trades VALUES ('T', 90), ('T', 95);\n\
     SHOW ALERTS;"
  in
  let a, b = run_both session session' again in
  check_tuples "cooldown state preserved"
    (rows (List.nth a 2))
    (rows (List.nth b 2))

let test_not_a_session_snapshot () =
  check_raises_any "db-only snapshot rejected" (fun () ->
      ignore (Session_snapshot.load "((chronicle-snapshot 1))"));
  check_raises_any "garbage rejected" (fun () ->
      ignore (Session_snapshot.load "(nope)"))

let test_file_roundtrip () =
  let session = build () in
  let path = Filename.temp_file "chronicle_session" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Session_snapshot.save_file session path;
      let session' = Session_snapshot.load_file path in
      let a, b = run_both session session' "SHOW WINDOWED recent;" in
      check_tuples "via file" (rows (List.hd a)) (rows (List.hd b)))

let suite =
  [
    test "roundtrip and identical continuation" test_roundtrip_and_continuation;
    test "detector cooldowns survive" test_cooldown_survives;
    test "malformed inputs rejected" test_not_a_session_snapshot;
    test "file save/load" test_file_roundtrip;
  ]
