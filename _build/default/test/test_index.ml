open Relational
open Util

let exercise kind =
  let ix = Index.create kind ~attrs:[ "k" ] in
  Index.add ix [ vi 1 ] 10;
  Index.add ix [ vi 1 ] 11;
  Index.add ix [ vi 2 ] 20;
  Alcotest.check
    Alcotest.(list int)
    "multi-map find" [ 10; 11 ]
    (List.sort Int.compare (Index.find ix [ vi 1 ]));
  Alcotest.check Alcotest.(list int) "other key" [ 20 ] (Index.find ix [ vi 2 ]);
  Alcotest.check Alcotest.(list int) "absent" [] (Index.find ix [ vi 9 ]);
  check_int "cardinality" 2 (Index.cardinality ix);
  Index.remove ix [ vi 1 ] 10;
  Alcotest.check Alcotest.(list int) "after remove" [ 11 ] (Index.find ix [ vi 1 ]);
  Index.remove ix [ vi 1 ] 11;
  Alcotest.check Alcotest.(list int) "key drained" [] (Index.find ix [ vi 1 ]);
  check_int "cardinality after drain" 1 (Index.cardinality ix);
  Index.remove ix [ vi 9 ] 0 (* no-op *)

let test_hash () = exercise Index.Hash
let test_ordered () = exercise Index.Ordered

let test_range_ordered () =
  let ix = Index.create Index.Ordered ~attrs:[ "k" ] in
  for i = 0 to 9 do
    Index.add ix [ vi i ] i
  done;
  Alcotest.check
    Alcotest.(list int)
    "range" [ 3; 4; 5 ]
    (List.sort Int.compare
       (Index.find_range ix ~lo:(Some [ vi 3 ]) ~hi:(Some [ vi 5 ])));
  check_int "unbounded range" 10 (List.length (Index.find_range ix ~lo:None ~hi:None))

let test_range_hash_rejected () =
  let ix = Index.create Index.Hash ~attrs:[ "k" ] in
  check_raises_any "hash has no order" (fun () ->
      Index.find_range ix ~lo:None ~hi:None)

let test_composite_keys () =
  let ix = Index.create Index.Hash ~attrs:[ "a"; "b" ] in
  Index.add ix [ vi 1; vs "x" ] 1;
  Index.add ix [ vi 1; vs "y" ] 2;
  Alcotest.check Alcotest.(list int) "composite" [ 1 ] (Index.find ix [ vi 1; vs "x" ]);
  check_int "two distinct keys" 2 (Index.cardinality ix)

let test_probe_counting () =
  let ix = Index.create Index.Hash ~attrs:[ "k" ] in
  Index.add ix [ vi 1 ] 1;
  let before = Stats.snapshot () in
  ignore (Index.find ix [ vi 1 ]);
  ignore (Index.find ix [ vi 2 ]);
  let after = Stats.snapshot () in
  check_int "two probes counted" 2 (Stats.diff_get before after Stats.Index_probe)

let suite =
  [
    test "hash index" test_hash;
    test "ordered index" test_ordered;
    test "ordered range scan" test_range_ordered;
    test "hash range rejected" test_range_hash_rejected;
    test "composite keys" test_composite_keys;
    test "probe counting" test_probe_counting;
  ]
