(* Event rules in the surface language (§6's event algebra as ℒ). *)

open Relational
open Chronicle_lang
open Util

let setup () =
  let session = Session.create () in
  ignore
    (Analyze.run_script session
       "CREATE CHRONICLE txns (acct INT, kind STRING, amount FLOAT);");
  session

let test_parse_rule () =
  match
    Parser.parse
      "DEFINE RULE drain ON txns KEY (acct) WITHIN 10 WHEN EVENT d (kind = \
       'deposit' AND amount > 800.0) THEN REPEAT 2 EVENT w (kind = \
       'withdrawal');"
  with
  | [ Ast.Define_rule { name = "drain"; chronicle = "txns"; key = [ "acct" ];
        within = Some 10;
        pattern = Ast.Ev_seq (Ast.Ev_atom (Some "d", _), Ast.Ev_repeat (2, _)); _ } ] ->
      ()
  | _ -> Alcotest.fail "rule parse mismatch"

let test_pattern_precedence () =
  (* THEN binds tighter than AND, AND tighter than OR *)
  match
    Parser.parse
      "DEFINE RULE r ON txns KEY (acct) WHEN EVENT (kind = 'a') THEN EVENT \
       (kind = 'b') OR EVENT (kind = 'c') AND EVENT (kind = 'd');"
  with
  | [ Ast.Define_rule
        { pattern = Ast.Ev_or (Ast.Ev_seq _, Ast.Ev_and _); _ } ] ->
      ()
  | _ -> Alcotest.fail "precedence mismatch"

let test_rule_end_to_end () =
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE RULE drain ON txns KEY (acct) WITHIN 10 WHEN EVENT d (kind = \
       'deposit' AND amount > 800.0) THEN EVENT w (kind = 'withdrawal' AND \
       amount < -300.0);\n\
       APPEND INTO txns VALUES (7, 'deposit', 900.0);\n\
       ADVANCE CLOCK TO 2;\n\
       APPEND INTO txns VALUES (7, 'withdrawal', -400.0);\n\
       APPEND INTO txns VALUES (8, 'withdrawal', -400.0);\n\
       SHOW ALERTS;"
  in
  (match List.hd results with
  | Analyze.Defined_rule { rule = "drain"; chronicle = "txns" } -> ()
  | _ -> Alcotest.fail "expected Defined_rule");
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ -> (
      check_int "one alert" 1 (List.length rows);
      match rows with
      | [ row ] ->
          check_value "rule name" (vs "drain") (Tuple.get row 0);
          check_value "fired chronon" (vi 2) (Tuple.get row 3)
      | _ -> assert false)
  | _ -> Alcotest.fail "expected alert rows"

let test_within_expires_via_language () =
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE RULE fast ON txns KEY (acct) WITHIN 1 WHEN REPEAT 2 EVENT w \
       (kind = 'withdrawal');\n\
       APPEND INTO txns VALUES (1, 'withdrawal', -10.0);\n\
       ADVANCE CLOCK TO 5;\n\
       APPEND INTO txns VALUES (1, 'withdrawal', -10.0);\n\
       SHOW ALERTS;"
  in
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ -> check_int "expired, no alert" 0 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

let test_rule_errors () =
  let session = setup () in
  let expect src =
    match Analyze.run_script session src with
    | _ -> Alcotest.failf "expected error on %S" src
    | exception Analyze.Semantic_error _ -> ()
  in
  expect "DEFINE RULE r ON nope KEY (acct) WHEN EVENT (kind = 'x');";
  expect "DEFINE RULE r ON txns KEY (missing) WHEN EVENT (kind = 'x');";
  let ok = "DEFINE RULE r ON txns KEY (acct) WHEN EVENT (kind = 'x');" in
  ignore (Analyze.run_script session ok);
  expect ok (* duplicate rule name *)


let test_cooldown_reset_syntax () =
  (match
     Parser.parse
       "DEFINE RULE r ON txns KEY (acct) WITHIN 5 COOLDOWN 30 RESET WHEN \
        EVENT (kind = 'x');"
   with
  | [ Ast.Define_rule { within = Some 5; cooldown = Some 30; reset_on_match = true; _ } ] ->
      ()
  | _ -> Alcotest.fail "cooldown/reset parse mismatch");
  (* and it behaves: cooldown suppresses repeat alerts *)
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE RULE w ON txns KEY (acct) COOLDOWN 10 WHEN EVENT (kind = \
       'withdrawal');\n\
       APPEND INTO txns VALUES (1, 'withdrawal', -10.0);\n\
       ADVANCE CLOCK TO 2;\n\
       APPEND INTO txns VALUES (1, 'withdrawal', -10.0);\n\
       SHOW ALERTS;"
  in
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ -> check_int "one alert, one suppressed" 1 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

let suite =
  [
    test "parse DEFINE RULE" test_parse_rule;
    test "pattern operator precedence" test_pattern_precedence;
    test "rules fire through the language" test_rule_end_to_end;
    test "WITHIN deadlines via the language" test_within_expires_via_language;
    test "rule errors" test_rule_errors;
    test "COOLDOWN and RESET syntax" test_cooldown_reset_syntax;
  ]
