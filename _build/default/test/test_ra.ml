open Relational
open Util

let emp_schema =
  Schema.make [ ("eid", Value.TInt); ("dept", Value.TStr); ("pay", Value.TInt) ]

let dept_schema = Schema.make [ ("dname", Value.TStr); ("floor", Value.TInt) ]

let emps () =
  let r = Relation.create ~name:"emps" ~schema:emp_schema ~key:[ "eid" ] () in
  Relation.insert_all r
    [
      tup [ vi 1; vs "eng"; vi 100 ];
      tup [ vi 2; vs "eng"; vi 200 ];
      tup [ vi 3; vs "ops"; vi 150 ];
    ];
  r

let depts () =
  let r = Relation.create ~name:"depts" ~schema:dept_schema ~key:[ "dname" ] () in
  Relation.insert_all r [ tup [ vs "eng"; vi 4 ]; tup [ vs "ops"; vi 2 ] ];
  r

let test_select () =
  check_tuples "select"
    [ tup [ vi 2; vs "eng"; vi 200 ]; tup [ vi 3; vs "ops"; vi 150 ] ]
    (Ra.eval (Ra.Select (Predicate.("pay" >% vi 100), Ra.Rel (emps ()))))

let test_project () =
  check_tuples "project keeps bag"
    [ tup [ vs "eng" ]; tup [ vs "eng" ]; tup [ vs "ops" ] ]
    (Ra.eval (Ra.Project ([ "dept" ], Ra.Rel (emps ()))));
  check_tuples "distinct dedups"
    [ tup [ vs "eng" ]; tup [ vs "ops" ] ]
    (Ra.eval (Ra.Distinct (Ra.Project ([ "dept" ], Ra.Rel (emps ())))))

let test_product_and_clash () =
  let e = emps () and d = depts () in
  check_int "product size" 6 (List.length (Ra.eval (Ra.Product (Ra.Rel e, Ra.Rel d))));
  check_raises_any "self product clashes" (fun () ->
      Ra.schema_of (Ra.Product (Ra.Rel e, Ra.Rel e)));
  (* prefix disambiguates *)
  let sp = Ra.schema_of (Ra.Product (Ra.Rel e, Ra.Prefix ("o", Ra.Rel e))) in
  check_bool "prefixed" true (Schema.mem sp "o.eid")

let test_equijoin () =
  let out =
    Ra.eval (Ra.EquiJoin ([ ("dept", "dname") ], Ra.Rel (emps ()), Ra.Rel (depts ())))
  in
  check_tuples "join"
    [
      tup [ vi 1; vs "eng"; vi 100; vi 4 ];
      tup [ vi 2; vs "eng"; vi 200; vi 4 ];
      tup [ vi 3; vs "ops"; vi 150; vi 2 ];
    ]
    out;
  let s = Ra.schema_of (Ra.EquiJoin ([ ("dept", "dname") ], Ra.Rel (emps ()), Ra.Rel (depts ()))) in
  check_bool "right join attr dropped" false (Schema.mem s "dname")

let test_theta_join () =
  let out =
    Ra.eval
      (Ra.ThetaJoin
         ( Predicate.(Cmp (Attr "pay", Gt, Attr "o.pay")),
           Ra.Rel (emps ()),
           Ra.Prefix ("o", Ra.Rel (emps ())) ))
  in
  check_int "pairs with strictly greater pay" 3 (List.length out)

let test_union_diff () =
  let a = Ra.Const (dept_schema, [ tup [ vs "eng"; vi 4 ]; tup [ vs "hr"; vi 9 ] ]) in
  let b = Ra.Rel (depts ()) in
  check_tuples "union dedups"
    [ tup [ vs "eng"; vi 4 ]; tup [ vs "hr"; vi 9 ]; tup [ vs "ops"; vi 2 ] ]
    (Ra.eval (Ra.Union (a, b)));
  check_tuples "difference"
    [ tup [ vs "hr"; vi 9 ] ]
    (Ra.eval (Ra.Diff (a, b)))

let test_union_incompatible () =
  check_raises_any "incompatible union" (fun () ->
      Ra.schema_of (Ra.Union (Ra.Rel (emps ()), Ra.Rel (depts ()))))

let test_groupby () =
  check_tuples "groupby"
    [ tup [ vs "eng"; vi 300; vi 2 ]; tup [ vs "ops"; vi 150; vi 1 ] ]
    (Ra.eval
       (Ra.GroupBy
          ( [ "dept" ],
            [ Aggregate.sum "pay" "total"; Aggregate.count_star "n" ],
            Ra.Rel (emps ()) )))

let test_rename () =
  let s = Ra.schema_of (Ra.Rename ([ ("pay", "salary") ], Ra.Rel (emps ()))) in
  check_bool "renamed" true (Schema.mem s "salary");
  check_bool "old gone" false (Schema.mem s "pay")

let test_type_errors () =
  check_raises_any "bad selection attr" (fun () ->
      Ra.schema_of (Ra.Select (Predicate.("nope" =% vi 1), Ra.Rel (emps ()))));
  check_raises_any "bad projection" (fun () ->
      Ra.schema_of (Ra.Project ([ "nope" ], Ra.Rel (emps ()))));
  check_raises_any "bad join attr" (fun () ->
      Ra.schema_of (Ra.EquiJoin ([ ("nope", "dname") ], Ra.Rel (emps ()), Ra.Rel (depts ()))));
  check_raises_any "join type mismatch" (fun () ->
      Ra.schema_of (Ra.EquiJoin ([ ("pay", "dname") ], Ra.Rel (emps ()), Ra.Rel (depts ()))))

let test_eval_rel () =
  let rel = Ra.eval_rel ~name:"eng" (Ra.Select (Predicate.("dept" =% vs "eng"), Ra.Rel (emps ()))) in
  check_int "materialized" 2 (Relation.cardinality rel);
  check_string "named" "eng" (Relation.name rel)

let test_composed_query () =
  (* employees on floor 4 earning over 150, per dept count *)
  let q =
    Ra.GroupBy
      ( [ "dept" ],
        [ Aggregate.count_star "n" ],
        Ra.Select
          ( Predicate.(And ("floor" =% vi 4, "pay" >% vi 150)),
            Ra.EquiJoin ([ ("dept", "dname") ], Ra.Rel (emps ()), Ra.Rel (depts ())) ) )
  in
  check_tuples "composed" [ tup [ vs "eng"; vi 1 ] ] (Ra.eval q)

let suite =
  [
    test "selection" test_select;
    test "projection (bag) and distinct" test_project;
    test "product and name clash" test_product_and_clash;
    test "equijoin drops right key" test_equijoin;
    test "theta join" test_theta_join;
    test "union dedups, difference" test_union_diff;
    test "union incompatibility" test_union_incompatible;
    test "group by with aggregates" test_groupby;
    test "rename" test_rename;
    test "static type errors" test_type_errors;
    test "materialize to relation" test_eval_rel;
    test "composed query" test_composed_query;
  ]
