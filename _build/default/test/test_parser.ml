open Relational
open Chronicle_lang
open Util

let test_simple_view () =
  let s =
    Parser.parse_select
      "SELECT acct, SUM(miles) AS balance FROM CHRONICLE mileage GROUP BY acct"
  in
  check_string "chronicle" "mileage" s.Ast.chronicle;
  check_bool "no join" true (s.Ast.join = None);
  check_bool "no where" true (s.Ast.where = None);
  Alcotest.check (Alcotest.list Alcotest.string) "group" [ "acct" ] s.Ast.group_by;
  check_int "items" 2 (List.length s.Ast.items);
  match s.Ast.items with
  | [ Ast.Col "acct"; Ast.Agg { func = Aggregate.Sum; arg = Some "miles"; alias = Some "balance" } ] ->
      ()
  | _ -> Alcotest.fail "unexpected items"

let test_count_star_and_default_alias () =
  let s = Parser.parse_select "SELECT COUNT(*) FROM CHRONICLE c" in
  (match s.Ast.items with
  | [ Ast.Agg { func = Aggregate.Count; arg = None; alias = None } ] -> ()
  | _ -> Alcotest.fail "expected COUNT(*)");
  check_bool "no grouping" true (s.Ast.group_by = [])

let test_join_clause () =
  let s =
    Parser.parse_select
      "SELECT state FROM CHRONICLE m JOIN customers ON acct = cust AND plan = tier"
  in
  match s.Ast.join with
  | Some { Ast.rel = "customers"; on = [ ("acct", "cust"); ("plan", "tier") ] } -> ()
  | _ -> Alcotest.fail "join clause mismatch"

let test_where_precedence () =
  let s =
    Parser.parse_select
      "SELECT acct FROM CHRONICLE c WHERE a = 1 AND b = 2 OR x > 3"
  in
  (* OR binds looser than AND: (a AND b) OR x... our grammar: or(and, rest) *)
  match s.Ast.where with
  | Some (Ast.Or (Ast.And _, Ast.Cmp _)) -> ()
  | _ -> Alcotest.fail "precedence mismatch"

let test_where_parens_and_not () =
  let s =
    Parser.parse_select
      "SELECT acct FROM CHRONICLE c WHERE NOT (a = 1 OR b = 'x')"
  in
  match s.Ast.where with
  | Some (Ast.Not (Ast.Or _)) -> ()
  | _ -> Alcotest.fail "parenthesized NOT mismatch"

let test_conjunct_split () =
  let s =
    Parser.parse_select
      "SELECT acct FROM CHRONICLE c WHERE a = 1 AND (b = 2 OR z < 3) AND d <> 4"
  in
  match s.Ast.where with
  | Some cond -> check_int "three conjuncts" 3 (List.length (Ast.conjuncts cond))
  | None -> Alcotest.fail "where expected"

let test_create_chronicle () =
  match Parser.parse "CREATE CHRONICLE calls (number INT, cost FLOAT) RETAIN WINDOW 100;" with
  | [ Ast.Create_chronicle { name = "calls"; columns; retain = Some (Ast.Retain_window 100) } ] ->
      check_bool "columns" true
        (columns = [ ("number", Value.TInt); ("cost", Value.TFloat) ])
  | _ -> Alcotest.fail "create chronicle mismatch"

let test_create_relation () =
  match
    Parser.parse "CREATE RELATION customers (cust INT, state STRING) KEY (cust);"
  with
  | [ Ast.Create_relation { name = "customers"; key = [ "cust" ]; _ } ] -> ()
  | _ -> Alcotest.fail "create relation mismatch"

let test_append_insert () =
  match
    Parser.parse
      "APPEND INTO calls VALUES (1, 2.5), (2, 0.5); INSERT INTO customers VALUES (1, 'NJ');"
  with
  | [
   Ast.Append_into { chronicle = "calls"; rows = [ [ Value.Int 1; Value.Float 2.5 ]; [ Value.Int 2; Value.Float 0.5 ] ] };
   Ast.Insert_into { relation = "customers"; rows = [ [ Value.Int 1; Value.Str "NJ" ] ] };
  ] ->
      ()
  | _ -> Alcotest.fail "append/insert mismatch"

let test_show () =
  match Parser.parse "SHOW VIEW balance; SHOW CLASSIFY balance;" with
  | [ Ast.Show_view "balance"; Ast.Show_classify "balance" ] -> ()
  | _ -> Alcotest.fail "show mismatch"

let test_multi_statement_script () =
  let script =
    "CREATE CHRONICLE t (a INT); -- comment\n\
     DEFINE VIEW v AS SELECT a, COUNT(*) AS n FROM CHRONICLE t GROUP BY a;\n\
     APPEND INTO t VALUES (1);"
  in
  check_int "three statements" 3 (List.length (Parser.parse script))

let expect_parse_error src =
  match Parser.parse src with
  | _ -> Alcotest.failf "expected parse error on %S" src
  | exception Parser.Parse_error _ -> ()
  | exception Lexer.Lex_error _ -> ()

let test_errors () =
  expect_parse_error "SELECT FROM CHRONICLE t;";
  expect_parse_error "DEFINE VIEW v AS SELECT a FROM t;";
  (* missing CHRONICLE keyword *)
  expect_parse_error "CREATE CHRONICLE t (a BOGUSTYPE);";
  expect_parse_error "APPEND INTO t VALUES (a);";
  (* attribute where literal expected *)
  expect_parse_error "CREATE CHRONICLE t (a INT)" (* missing semicolon *)

let test_soft_keywords_as_identifiers () =
  (* statement vocabulary stays usable as schema names *)
  let s =
    Parser.parse_select
      "SELECT plan, SUM(width) AS start FROM CHRONICLE stats WHERE clock > 5 \
       GROUP BY plan"
  in
  check_string "chronicle named stats" "stats" s.Ast.chronicle;
  (match s.Ast.items with
  | [ Ast.Col "plan"; Ast.Agg { arg = Some "width"; alias = Some "start"; _ } ] -> ()
  | _ -> Alcotest.fail "soft keyword items mismatch");
  match s.Ast.where with
  | Some (Ast.Cmp { left = Ast.Attr "clock"; _ }) -> ()
  | _ -> Alcotest.fail "soft keyword in WHERE mismatch"

let suite =
  [
    test "simple grouped view" test_simple_view;
    test "soft keywords usable as identifiers" test_soft_keywords_as_identifiers;
    test "COUNT(*) without alias" test_count_star_and_default_alias;
    test "join with multiple ON pairs" test_join_clause;
    test "AND binds tighter than OR" test_where_precedence;
    test "parentheses and NOT" test_where_parens_and_not;
    test "conjunct splitting" test_conjunct_split;
    test "CREATE CHRONICLE with retention" test_create_chronicle;
    test "CREATE RELATION with key" test_create_relation;
    test "APPEND/INSERT rows" test_append_insert;
    test "SHOW statements" test_show;
    test "multi-statement script" test_multi_statement_script;
    test "parse errors" test_errors;
  ]
