open Relational
open Chronicle_core
open Chronicle_events
open Util

let txn_schema =
  Schema.make
    [ ("acct", Value.TInt); ("kind", Value.TStr); ("amount", Value.TFloat) ]

let setup () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"txns" txn_schema);
  let chron = Db.chronicle db "txns" in
  let det = Detector.create chron in
  Detector.attach db det;
  (db, det)

let ev acct kind amount = tup [ vi acct; vs kind; vf amount ]

let withdrawal_over x =
  Predicate.(And ("kind" =% vs "withdrawal", "amount" <% vf (-.x)))

let deposit_over x = Predicate.(And ("kind" =% vs "deposit", "amount" >% vf x))

let test_atom () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"big_withdrawal"
       ~pattern:(Pattern.atom "w" (withdrawal_over 400.))
       ~key:[ "acct" ] ());
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-100.) ]);
  check_int "no fire" 0 (Detector.occurrence_count det);
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-500.) ]);
  check_int "fired" 1 (Detector.occurrence_count det);
  match Detector.occurrences det with
  | [ o ] ->
      check_string "rule" "big_withdrawal" o.Detector.rule;
      check_bool "key" true (Value.equal_list o.Detector.key_values [ vi 1 ])
  | _ -> Alcotest.fail "one occurrence expected"

let test_sequence_and_correlation () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"deposit_then_drain"
       ~pattern:(Pattern.seq
          [ Pattern.atom "d" (deposit_over 900.);
            Pattern.atom "w" (withdrawal_over 900.) ])
       ~key:[ "acct" ] ());
  ignore (Db.append db "txns" [ ev 1 "deposit" 1000. ]);
  (* a different account's withdrawal must not complete account 1's
     pattern *)
  ignore (Db.append db "txns" [ ev 2 "withdrawal" (-1000.) ]);
  check_int "not cross-correlated" 0 (Detector.occurrence_count det);
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-950.) ]);
  check_int "fired for account 1" 1 (Detector.occurrence_count det)

let test_sequence_order_matters () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"d_then_w"
       ~pattern:(Pattern.seq
          [ Pattern.atom "d" (deposit_over 0.); Pattern.atom "w" (withdrawal_over 0.) ])
       ~key:[ "acct" ] ());
  (* withdrawal first: the sequence must not fire *)
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  ignore (Db.append db "txns" [ ev 1 "deposit" 10. ]);
  check_int "wrong order" 0 (Detector.occurrence_count det);
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  check_int "right order fires" 1 (Detector.occurrence_count det)

let test_and_any_order () =
  let mk () =
    let db, det = setup () in
    Detector.add_rule det
      (Detector.rule ~name:"both"
       ~pattern:(Pattern.And
            (Pattern.atom "d" (deposit_over 0.), Pattern.atom "w" (withdrawal_over 0.)))
       ~key:[ "acct" ] ());
    (db, det)
  in
  let db, det = mk () in
  ignore (Db.append db "txns" [ ev 1 "deposit" 10. ]);
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  check_int "d then w" 1 (Detector.occurrence_count det);
  let db, det = mk () in
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  ignore (Db.append db "txns" [ ev 1 "deposit" 10. ]);
  check_int "w then d" 1 (Detector.occurrence_count det)

let test_or () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"either"
       ~pattern:(Pattern.Or
          (Pattern.atom "big_d" (deposit_over 5000.),
           Pattern.atom "big_w" (withdrawal_over 5000.)))
       ~key:[ "acct" ] ());
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-9000.) ]);
  check_int "or fires" 1 (Detector.occurrence_count det)

let test_repeat_with_skip () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"three_withdrawals"
       ~pattern:(Pattern.repeat 3 (Pattern.atom "w" (withdrawal_over 400.)))
       ~key:[ "acct" ] ());
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-500.) ]);
  ignore (Db.append db "txns" [ ev 1 "deposit" 5. ]);
  (* irrelevant event in between: skip semantics *)
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-600.) ]);
  check_int "two so far" 0 (Detector.occurrence_count det);
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-700.) ]);
  check_int "third completes" 1 (Detector.occurrence_count det)

let test_within_deadline () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"rapid_pair"
       ~pattern:(Pattern.repeat 2 (Pattern.atom "w" (withdrawal_over 100.)))
       ~key:[ "acct" ] ~within:5 ());
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-200.) ]);
  Db.advance_clock db 10;
  (* too late: the first instance expired *)
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-200.) ]);
  check_int "expired instance does not fire" 0 (Detector.occurrence_count det);
  Db.advance_clock db 12;
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-200.) ]);
  check_int "rapid pair fires" 1 (Detector.occurrence_count det)

let test_history_less () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"pair"
       ~pattern:(Pattern.repeat 2 (Pattern.atom "w" (withdrawal_over 0.)))
       ~key:[ "acct" ] ~within:100 ());
  for i = 1 to 50 do
    ignore (Db.append db "txns" [ ev (i mod 7) "withdrawal" (-10.) ])
  done;
  let before = Stats.snapshot () in
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  let after = Stats.snapshot () in
  check_int "no chronicle re-read (history-less evaluation)" 0
    (Stats.diff_get before after Stats.Chronicle_scan)

let test_instance_cap () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"txns" txn_schema);
  let det = Detector.create ~max_instances_per_key:4 (Db.chronicle db "txns") in
  Detector.attach db det;
  Detector.add_rule det
    (Detector.rule ~name:"pair"
       ~pattern:(Pattern.seq
          [ Pattern.atom "a" (withdrawal_over 0.); Pattern.atom "b" (deposit_over 1e9) ])
       ~key:[ "acct" ] ());
  (* every withdrawal opens a partial instance that can never complete;
     distinct chronons keep the instances distinct *)
  for day = 1 to 100 do
    Db.advance_clock db day;
    ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ])
  done;
  check_bool "bounded state" true (Detector.live_instances det <= 4);
  check_bool "drops counted" true (Detector.dropped_instances det > 0)

let test_reset_on_match () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"pair"
       ~pattern:(Pattern.repeat 2 (Pattern.atom "w" (withdrawal_over 0.)))
       ~key:[ "acct" ] ~reset_on_match:true ());
  (* four withdrawals: without reset every adjacent/overlapping pair
     fires (3+ occurrences); with reset only disjoint pairs do *)
  for day = 1 to 4 do
    Db.advance_clock db day;
    ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ])
  done;
  check_int "two disjoint pairs" 2 (Detector.occurrence_count det);
  check_int "state cleared after each match" 0 (Detector.live_instances det)

let test_overlapping_without_reset () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"pair"
       ~pattern:(Pattern.repeat 2 (Pattern.atom "w" (withdrawal_over 0.)))
       ~key:[ "acct" ] ());
  for day = 1 to 4 do
    Db.advance_clock db day;
    ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ])
  done;
  (* pairs (1,2) (1..3 via 2,3) (…): every later event closes a pair with
     every running single-withdrawal instance *)
  check_bool "overlapping matches multiply" true (Detector.occurrence_count det > 2)

let test_cooldown () =
  let db, det = setup () in
  Detector.add_rule det
    (Detector.rule ~name:"w"
       ~pattern:(Pattern.atom "w" (withdrawal_over 0.))
       ~key:[ "acct" ] ~cooldown:10 ());
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  Db.advance_clock db 3;
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  check_int "second fire suppressed" 1 (Detector.occurrence_count det);
  check_int "suppression counted" 1 (Detector.suppressed det);
  (* the cooldown is per key: another account fires freely *)
  ignore (Db.append db "txns" [ ev 2 "withdrawal" (-10.) ]);
  check_int "other key fires" 2 (Detector.occurrence_count det);
  Db.advance_clock db 11;
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  check_int "after cooldown fires again" 3 (Detector.occurrence_count det)

let test_listener_and_duplicate_rule () =
  let db, det = setup () in
  let heard = ref [] in
  Detector.on_match det (fun o -> heard := o.Detector.rule :: !heard);
  let rule =
    (Detector.rule ~name:"w"
       ~pattern:(Pattern.atom "w" (withdrawal_over 0.))
       ~key:[ "acct" ] ())
  in
  Detector.add_rule det rule;
  check_raises_any "duplicate rule" (fun () -> Detector.add_rule det rule);
  check_raises_any "bad key attr" (fun () ->
      Detector.add_rule det { rule with Detector.rule_name = "w2"; key = [ "nope" ] });
  ignore (Db.append db "txns" [ ev 1 "withdrawal" (-10.) ]);
  check_bool "listener heard" true (!heard = [ "w" ])

(* Brute-force reference for sequence patterns.  The detector
   deduplicates partial instances by (start chronon, residual), so for a
   pure atom sequence every embedding with the same first and last event
   fires exactly once: the expected occurrence count is the number of
   DISTINCT (first chronon, last chronon) pairs over the embeddings
   i₁<…<iₘ with chronon(iₘ) ≤ chronon(i₁) + within. *)
let count_start_end_pairs atoms events ~within =
  (* atoms: kind list; events: (chronon * kind) list, in stream order *)
  let pairs = Hashtbl.create 16 in
  let rec go atoms events started =
    match atoms with
    | [] -> ()
    | q :: rest ->
        let rec over = function
          | [] -> ()
          | (chronon, kind) :: tail ->
              let in_deadline =
                match started, within with
                | Some s, Some w -> chronon <= s + w
                | (Some _ | None), _ -> true
              in
              if kind = q && in_deadline then begin
                let start = Option.value ~default:chronon started in
                if rest = [] then Hashtbl.replace pairs (start, chronon) ()
                else go rest tail (Some start)
              end;
              over tail
        in
        over events
  in
  go atoms events None;
  Hashtbl.length pairs

let qcheck_detector_equals_embedding_count =
  let gen =
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3) (int_bound 2)) (* atom kinds *)
        (pair
           (list_of_size (Gen.int_range 0 10)
              (pair (int_bound 2) (int_bound 1))) (* events: kind, key *)
           (option (int_bound 6)))) (* within *)
  in
  qtest ~count:300 "derivative detector = brute-force embedding count" gen
    (fun (atom_kinds, (events, within)) ->
      let kind_name k = Printf.sprintf "k%d" k in
      let db = Db.create () in
      ignore
        (Db.add_chronicle db ~name:"ev"
           (Schema.make [ ("key", Value.TInt); ("kind", Value.TStr) ]));
      let det = Detector.create ~max_instances_per_key:10_000 (Db.chronicle db "ev") in
      Detector.attach db det;
      Detector.add_rule det
        (Detector.rule ~name:"r"
           ~pattern:
             (Pattern.seq
                (List.map
                   (fun k ->
                     Pattern.atom (kind_name k)
                       Predicate.("kind" =% Value.Str (kind_name k)))
                   atom_kinds))
           ~key:[ "key" ] ?within ());
      (* one event per chronon *)
      List.iteri
        (fun chronon (kind, key) ->
          Db.advance_clock db chronon;
          ignore
            (Db.append db "ev"
               [ Tuple.make [ Value.Int key; Value.Str (kind_name kind) ] ]))
        events;
      let expected =
        List.fold_left ( + ) 0
          (List.map
             (fun key ->
               let key_events =
                 List.mapi (fun chronon (kind, k) -> (chronon, kind, k)) events
                 |> List.filter_map (fun (chronon, kind, k) ->
                        if k = key then Some (chronon, kind) else None)
               in
               count_start_end_pairs atom_kinds key_events ~within)
             [ 0; 1 ])
      in
      Detector.occurrence_count det = expected)

let suite =
  [
    test "atomic patterns" test_atom;
    test "sequences correlate by key" test_sequence_and_correlation;
    test "sequence order matters" test_sequence_order_matters;
    test "AND in any order" test_and_any_order;
    test "OR" test_or;
    test "repeat with skip semantics" test_repeat_with_skip;
    test "within deadlines expire instances" test_within_deadline;
    test "detection is history-less (§6)" test_history_less;
    test "reset_on_match fires disjoint pairs" test_reset_on_match;
    test "overlapping matches without reset" test_overlapping_without_reset;
    test "cooldown suppresses per key" test_cooldown;
    qcheck_detector_equals_embedding_count;
    test "instance cap bounds state" test_instance_cap;
    test "listeners and rule validation" test_listener_and_duplicate_rule;
  ]
