open Relational
open Chronicle_workload
open Util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  check_bool "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_range rng 5 8 in
    check_bool "in closed range" true (x >= 5 && x <= 8)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0. && f < 2.5)
  done;
  check_raises_any "bad bound" (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let rng = Rng.create 1 in
  let forked = Rng.split rng in
  let xs = List.init 10 (fun _ -> Rng.int rng 1000) in
  let ys = List.init 10 (fun _ -> Rng.int forked 1000) in
  check_bool "streams differ" true (xs <> ys)

let test_zipf_skew () =
  let rng = Rng.create 11 in
  let z = Zipf.create ~n:100 ~s:1.1 in
  let counts = Array.make 101 0 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z rng in
    check_bool "in range" true (r >= 1 && r <= 100);
    counts.(r) <- counts.(r) + 1
  done;
  check_bool "rank 1 dominates rank 50" true (counts.(1) > counts.(50) * 3);
  check_bool "rank 1 is popular" true (counts.(1) > 1000)

let test_zipf_uniform_degenerate () =
  let rng = Rng.create 11 in
  let z = Zipf.create ~n:4 ~s:0. in
  let counts = Array.make 5 0 in
  for _ = 1 to 8000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun i c -> if i >= 1 then check_bool "roughly uniform" true (c > 1500 && c < 2500))
    counts

let test_generators_type_check () =
  let rng = Rng.create 3 in
  let z = Zipf.create ~n:50 ~s:1.0 in
  List.iter
    (fun tu -> check_bool "flyer customer" true (Tuple.type_check Flyer.customer_schema tu))
    (Flyer.customers rng ~n:20);
  for _ = 1 to 50 do
    check_bool "mileage" true (Tuple.type_check Flyer.mileage_schema (Flyer.mileage_event rng z));
    check_bool "call" true (Tuple.type_check Telecom.call_schema (Telecom.call rng z));
    check_bool "txn" true (Tuple.type_check Banking.txn_schema (Banking.txn rng z));
    check_bool "trade" true (Tuple.type_check Stock.trade_schema (Stock.trade rng))
  done;
  List.iter
    (fun tu -> check_bool "subscriber" true (Tuple.type_check Telecom.customer_schema tu))
    (Telecom.customers rng ~n:20);
  List.iter
    (fun tu -> check_bool "account" true (Tuple.type_check Banking.account_schema tu))
    (Banking.accounts rng ~n:20)

let test_customers_keyed_and_nj_present () =
  let rng = Rng.create 5 in
  let custs = Flyer.customers rng ~n:200 in
  check_int "n rows" 200 (List.length custs);
  let accts = List.map (fun tu -> Value.to_int (Tuple.get tu 0)) custs in
  check_bool "accounts dense 1..n" true
    (List.sort Int.compare accts = List.init 200 (fun i -> i + 1));
  let nj =
    List.length
      (List.filter (fun tu -> Value.equal (Tuple.get tu 2) (vs "NJ")) custs)
  in
  check_bool "NJ fraction plausible" true (nj > 20 && nj < 120)

let suite =
  [
    test "rng is deterministic per seed" test_rng_deterministic;
    test "rng bounds" test_rng_bounds;
    test "rng split independence" test_rng_split_independent;
    test "zipf skew" test_zipf_skew;
    test "zipf s=0 is uniform" test_zipf_uniform_degenerate;
    test "all generators type-check" test_generators_type_check;
    test "flyer customers are keyed, NJ present" test_customers_keyed_and_nj_present;
  ]
