open Relational
open Chronicle_temporal
open Util

(* Reference: brute-force recomputation over the raw (chronon, value)
   stream for the window [now - buckets*width + 1 bucket alignment]. *)
let brute_force func ~buckets ~width ~start events now =
  let head = (now - start) / width in
  let first_bucket = head - buckets + 1 in
  let in_window (c, _) =
    let b = (c - start) / width in
    b >= first_bucket && b <= head
  in
  Aggregate.batch func (List.map snd (List.filter in_window events))

let test_sum_basic () =
  let w = Window.create ~func:Aggregate.Sum ~buckets:3 ~bucket_width:10 ~start:0 in
  Window.add w 0 (vi 5);
  Window.add w 5 (vi 5);
  check_value "one bucket" (vi 10) (Window.total w);
  Window.add w 12 (vi 7);
  check_value "two buckets" (vi 17) (Window.total w);
  Window.add w 25 (vi 1);
  check_value "three buckets" (vi 18) (Window.total w);
  (* bucket 0 (chronons 0..9) retires when bucket 3 opens *)
  Window.add w 31 (vi 100);
  check_value "oldest retired" (vi 108) (Window.total w)

let test_time_must_advance () =
  let w = Window.create ~func:Aggregate.Sum ~buckets:3 ~bucket_width:10 ~start:0 in
  Window.add w 15 (vi 1);
  check_raises_any "backwards" (fun () -> Window.add w 5 (vi 1))

let test_skipping_far_ahead_clears () =
  let w = Window.create ~func:Aggregate.Sum ~buckets:3 ~bucket_width:10 ~start:0 in
  Window.add w 0 (vi 50);
  (* jump far past the window: everything retires *)
  Window.advance w 1000;
  check_value "empty again" Value.Null (Window.total w);
  Window.add w 1001 (vi 3);
  check_value "fresh value" (vi 3) (Window.total w)

let test_min_max_recombination () =
  let w = Window.create ~func:Aggregate.Max ~buckets:2 ~bucket_width:10 ~start:0 in
  Window.add w 1 (vi 100);
  Window.add w 11 (vi 7);
  check_value "max across buckets" (vi 100) (Window.total w);
  (* when the 100-bucket retires, the max falls to 7 — this is why
     MIN/MAX need per-bucket states, not a single running value *)
  Window.advance w 21;
  check_value "max after retirement" (vi 7) (Window.total w)

let test_bucket_totals () =
  let w = Window.create ~func:Aggregate.Count ~buckets:3 ~bucket_width:10 ~start:0 in
  Window.add w 5 (vi 1);
  Window.add w 15 (vi 1);
  Window.add w 16 (vi 1);
  Alcotest.check (Alcotest.list value_testable) "per-bucket"
    [ Value.Null; vi 1; vi 2 ]
    (Window.bucket_totals w);
  check_int "rolls" 1 (Window.rolls w)

let test_thirty_day_stock_example () =
  (* §5.1: daily view of shares sold in the preceding 30 days *)
  let w = Window.create ~func:Aggregate.Sum ~buckets:30 ~bucket_width:1 ~start:0 in
  for day = 0 to 99 do
    Window.add w day (vi 100)
  done;
  check_value "last 30 days" (vi 3000) (Window.total w)

let qcheck_window_equals_brute_force =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (pair (int_bound 5) (int_range 1 100)))
  in
  qtest "cyclic buffer = brute-force recomputation (random streams)" gen
    (fun steps ->
      List.for_all
        (fun func ->
          let w = Window.create ~func ~buckets:4 ~bucket_width:5 ~start:0 in
          let events = ref [] in
          let clock = ref 0 in
          List.for_all
            (fun (gap, v) ->
              clock := !clock + gap;
              Window.add w !clock (vi v);
              events := (!clock, vi v) :: !events;
              let expected =
                brute_force func ~buckets:4 ~width:5 ~start:0 !events !clock
              in
              Value.equal (Window.total w) expected)
            steps)
        [ Aggregate.Sum; Aggregate.Count; Aggregate.Min; Aggregate.Max; Aggregate.Avg ])

let suite =
  [
    test "moving SUM across buckets" test_sum_basic;
    test "chronons must be non-decreasing" test_time_must_advance;
    test "skipping far ahead clears all buckets" test_skipping_far_ahead_clears;
    test "MIN/MAX need per-bucket recombination" test_min_max_recombination;
    test "per-bucket inspection and roll count" test_bucket_totals;
    test "the 30-day stock example (§5.1)" test_thirty_day_stock_example;
    qcheck_window_equals_brute_force;
  ]
