open Relational
open Util

let test_compare_numeric () =
  check_bool "int/float equal" true (Value.equal (vi 3) (vf 3.));
  check_bool "int < float" true (Value.compare (vi 3) (vf 3.5) < 0);
  check_bool "float > int" true (Value.compare (vf 3.5) (vi 3) > 0);
  check_bool "int = int" true (Value.equal (vi 7) (vi 7));
  check_bool "int <> int" false (Value.equal (vi 7) (vi 8))

let test_compare_cross_type () =
  check_bool "null sorts first" true (Value.compare Value.Null (vb false) < 0);
  check_bool "bool before numeric" true (Value.compare (vb true) (vi 0) < 0);
  check_bool "numeric before string" true (Value.compare (vi 99) (vs "a") < 0);
  check_bool "string order" true (Value.compare (vs "abc") (vs "abd") < 0)

let test_hash_consistent_with_equal () =
  check_int "hash of Int 5 = hash of Float 5." (Value.hash (vi 5))
    (Value.hash (vf 5.));
  check_int "hash stable" (Value.hash (vs "xyz")) (Value.hash (vs "xyz"))

let test_arithmetic () =
  check_value "int add" (vi 7) (Value.add (vi 3) (vi 4));
  check_value "mixed add is float" (vf 7.5) (Value.add (vi 3) (vf 4.5));
  check_float "to_float" 4.0 (Value.to_float (vi 4));
  check_int "to_int truncates" 4 (Value.to_int (vf 4.9));
  check_raises_any "add strings" (fun () -> Value.add (vs "a") (vs "b"));
  check_raises_any "to_float null" (fun () -> Value.to_float Value.Null)

let test_ty () =
  check_bool "ty of null" true (Value.ty_of Value.Null = None);
  check_bool "ty of int" true (Value.ty_of (vi 1) = Some Value.TInt);
  check_string "ty name" "string" (Value.ty_name Value.TStr)

let test_list_ops () =
  check_bool "list equal" true (Value.equal_list [ vi 1; vs "a" ] [ vi 1; vs "a" ]);
  check_bool "list differ" false (Value.equal_list [ vi 1 ] [ vi 2 ]);
  check_bool "prefix smaller" true (Value.compare_list [ vi 1 ] [ vi 1; vi 2 ] < 0);
  check_int "hash_list consistent"
    (Value.hash_list [ vi 5; vs "x" ])
    (Value.hash_list [ vf 5.; vs "x" ])

let qcheck_compare_total_order =
  let gen =
    QCheck.(
      let base =
        oneof
          [
            map (fun i -> Value.Int i) small_signed_int;
            map (fun f -> Value.Float f) (float_bound_exclusive 1000.);
            map (fun s -> Value.Str s) (string_of_size (Gen.return 3));
            map (fun b -> Value.Bool b) bool;
            always Value.Null;
          ]
      in
      triple base base base)
  in
  qtest "Value.compare is a total order (antisym + trans on triples)" gen
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      (* transitivity of <= *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let suite =
  [
    test "compare: numeric coercion" test_compare_numeric;
    test "compare: cross-type ranks" test_compare_cross_type;
    test "hash consistent with equal" test_hash_consistent_with_equal;
    test "arithmetic helpers" test_arithmetic;
    test "type of value" test_ty;
    test "composite key operations" test_list_ops;
    qcheck_compare_total_order;
  ]
