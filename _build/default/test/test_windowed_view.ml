open Relational
open Chronicle_core
open Chronicle_temporal
open Util

let trade_schema =
  Schema.make [ ("symbol", Value.TStr); ("shares", Value.TInt) ]

let trade sym sh = tup [ vs sym; vi sh ]

let setup ~buckets =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"trades" trade_schema);
  let def =
    Sca.define ~name:"vol" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
      (Sca.Group_agg
         ( [ "symbol" ],
           [ Aggregate.sum "shares" "shares_w"; Aggregate.count_star "trades_w" ] ))
  in
  let wv = Windowed_view.derive ~buckets def in
  Windowed_view.attach db wv;
  (db, def, wv)

let test_rejects_projection_views () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"trades" trade_schema);
  let def =
    Sca.define ~name:"syms" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
      (Sca.Project_out [ "symbol" ])
  in
  check_raises_any "projection not derivable" (fun () ->
      ignore (Windowed_view.derive ~buckets:3 def))

let test_window_rolls () =
  let db, _, wv = setup ~buckets:3 in
  (* day 0..2: 100 shares each; day 3 retires day 0 *)
  for day = 0 to 2 do
    Db.advance_clock db day;
    ignore (Db.append db "trades" [ trade "T" 100 ])
  done;
  check_bool "3 days in window" true
    (Windowed_view.lookup wv [ vs "T" ] = Some (tup [ vs "T"; vi 300; vi 3 ]));
  Db.advance_clock db 3;
  ignore (Db.append db "trades" [ trade "T" 50 ]);
  check_bool "day 0 retired" true
    (Windowed_view.lookup wv [ vs "T" ] = Some (tup [ vs "T"; vi 250; vi 3 ]));
  check_bool "unknown key" true (Windowed_view.lookup wv [ vs "ZZ" ] = None);
  check_int "one group" 1 (Windowed_view.group_count wv)

let test_idle_group_decays () =
  let db, _, wv = setup ~buckets:3 in
  ignore (Db.append db "trades" [ trade "T" 100 ]);
  (* the clock moves past the whole window with no further T trades *)
  Db.advance_clock db 10;
  ignore (Db.append db "trades" [ trade "IBM" 5 ]);
  check_bool "idle group reports empty window" true
    (Windowed_view.lookup wv [ vs "T" ] = Some (tup [ vs "T"; Value.Null; vi 0 ]))

let test_agrees_with_periodic_family () =
  (* the derived cyclic buffers must answer exactly like the generic
     sliding-calendar periodic family's current view, day after day *)
  let buckets = 5 in
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"trades" trade_schema);
  let def =
    Sca.define ~name:"vol" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
      (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "s" ]))
  in
  let wv = Windowed_view.derive ~buckets def in
  Windowed_view.attach db wv;
  let family =
    Periodic.create ~expire_after:2 ~def
      ~calendar:(Calendar.periodic ~start:(-(buckets - 1)) ~width:buckets ~stride:1)
      ()
  in
  Periodic.attach db family;
  let rng = Chronicle_workload.Rng.create 31 in
  for day = 0 to 19 do
    Db.advance_clock db day;
    for _ = 1 to 5 do
      let sym = if Chronicle_workload.Rng.bool rng then "T" else "GE" in
      ignore
        (Db.append db "trades"
           [ trade sym (10 * (1 + Chronicle_workload.Rng.int rng 9)) ])
    done;
    let from_family sym =
      match Periodic.current family with
      | None -> None
      | Some (_, v) -> (
          match View.lookup v [ vs sym ] with
          | Some row -> Some (Tuple.get row 1)
          | None -> None)
    in
    let from_window sym =
      match Windowed_view.lookup wv [ vs sym ] with
      | Some row ->
          (* an idle-for-a-window group answers Null; the family answers
             None — both mean "no activity in the window" *)
          let v = Tuple.get row 1 in
          if Value.is_null v then None else Some v
      | None -> None
    in
    List.iter
      (fun sym ->
        let a = from_family sym and b = from_window sym in
        let show = function
          | None -> "none"
          | Some v -> Value.to_string v
        in
        if not (Option.equal Value.equal a b) then
          Alcotest.failf "day %d %s: family %s vs window %s" day sym (show a)
            (show b))
      [ "T"; "GE" ]
  done

let qcheck_agrees_with_family =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_bound 1) (int_range 1 9) (int_bound 2)))
  in
  qtest ~count:100 "derived window = periodic family on random streams" gen
    (fun steps ->
      let buckets = 4 in
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"trades" trade_schema);
      let def =
        Sca.define ~name:"vol" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
          (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "s" ]))
      in
      let wv = Windowed_view.derive ~buckets def in
      Windowed_view.attach db wv;
      let family =
        Periodic.create ~expire_after:2 ~def
          ~calendar:
            (Calendar.periodic ~start:(-(buckets - 1)) ~width:buckets ~stride:1)
          ()
      in
      Periodic.attach db family;
      let clock = ref 0 in
      List.for_all
        (fun (sym, shares, advance) ->
          clock := !clock + advance;
          Db.advance_clock db !clock;
          let sym = if sym = 0 then "T" else "GE" in
          ignore (Db.append db "trades" [ trade sym (10 * shares) ]);
          List.for_all
            (fun probe ->
              let family_ans =
                match Periodic.current family with
                | None -> None
                | Some (_, v) ->
                    Option.map (fun row -> Tuple.get row 1) (View.lookup v [ vs probe ])
              in
              let window_ans =
                match Windowed_view.lookup wv [ vs probe ] with
                | None -> None
                | Some row ->
                    let v = Tuple.get row 1 in
                    if Value.is_null v then None else Some v
              in
              Option.equal Value.equal family_ans window_ans)
            [ "T"; "GE" ])
        steps)

let test_multi_aggregate_row () =
  let db, def, wv = setup ~buckets:4 in
  ignore def;
  ignore (Db.append db "trades" [ trade "T" 100 ]);
  ignore (Db.append db "trades" [ trade "T" 50 ]);
  match Windowed_view.lookup wv [ vs "T" ] with
  | Some row ->
      check_value "sum" (vi 150) (Tuple.get row 1);
      check_value "count" (vi 2) (Tuple.get row 2)
  | None -> Alcotest.fail "group missing"

let test_to_list_sorted () =
  let db, _, wv = setup ~buckets:3 in
  ignore (Db.append db "trades" [ trade "T" 1 ]);
  ignore (Db.append db "trades" [ trade "GE" 2 ]);
  check_int "rows" 2 (List.length (Windowed_view.to_list wv))

let suite =
  [
    test "projection views are not derivable" test_rejects_projection_views;
    test "buckets roll as the clock advances" test_window_rolls;
    test "idle groups decay to the empty window" test_idle_group_decays;
    test "agrees with the generic periodic family (§5.1 derivation)" test_agrees_with_periodic_family;
    qcheck_agrees_with_family;
    test "multiple aggregates per row" test_multi_aggregate_row;
    test "listing" test_to_list_sorted;
  ]
