open Relational
open Util

let s =
  Schema.make
    [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ]

let test_basic () =
  check_int "arity" 3 (Schema.arity s);
  check_int "pos b" 1 (Schema.pos s "b");
  check_bool "mem" true (Schema.mem s "c");
  check_bool "not mem" false (Schema.mem s "z");
  check_bool "ty" true (Schema.ty s "c" = Value.TFloat);
  Alcotest.check (Alcotest.list Alcotest.string) "names" [ "a"; "b"; "c" ]
    (Schema.names s)

let test_duplicate_rejected () =
  check_raises_any "duplicate" (fun () ->
      Schema.make [ ("x", Value.TInt); ("x", Value.TStr) ])

let test_unknown_attribute () =
  check_raises_any "pos of unknown" (fun () -> Schema.pos s "nope");
  check_bool "pos_opt none" true (Schema.pos_opt s "nope" = None)

let test_project () =
  let p = Schema.project s [ "c"; "a" ] in
  check_int "projected arity" 2 (Schema.arity p);
  check_int "order respected" 0 (Schema.pos p "c");
  check_int "order respected 2" 1 (Schema.pos p "a")

let test_concat_and_clash () =
  let t = Schema.make [ ("d", Value.TInt) ] in
  let u = Schema.concat s t in
  check_int "concat arity" 4 (Schema.arity u);
  check_raises_any "clash" (fun () -> Schema.concat s s)

let test_remove_rename_prefix () =
  let r = Schema.remove s "b" in
  check_int "removed arity" 2 (Schema.arity r);
  check_bool "b gone" false (Schema.mem r "b");
  let rn = Schema.rename s [ ("a", "alpha") ] in
  check_bool "renamed" true (Schema.mem rn "alpha");
  check_bool "others kept" true (Schema.mem rn "b");
  let pf = Schema.prefix "t" s in
  check_bool "prefixed" true (Schema.mem pf "t.a");
  check_int "prefix keeps positions" (Schema.pos s "c") (Schema.pos pf "t.c")

let test_equal_and_compat () =
  let same = Schema.make [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ] in
  let renamed = Schema.make [ ("x", Value.TInt); ("y", Value.TStr); ("z", Value.TFloat) ] in
  let retyped = Schema.make [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TInt) ] in
  check_bool "equal" true (Schema.equal s same);
  check_bool "not equal under rename" false (Schema.equal s renamed);
  check_bool "union compatible under rename" true (Schema.union_compatible s renamed);
  check_bool "not compatible under retype" false (Schema.union_compatible s retyped)

let suite =
  [
    test "make/pos/mem/names" test_basic;
    test "duplicate attribute rejected" test_duplicate_rejected;
    test "unknown attribute" test_unknown_attribute;
    test "project keeps requested order" test_project;
    test "concat and name clash" test_concat_and_clash;
    test "remove/rename/prefix" test_remove_rename_prefix;
    test "equality and union compatibility" test_equal_and_compat;
  ]
