open Relational
open Chronicle_core
open Util
open Fixtures

let test_consistent () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage" mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ([ "acct" ], [ Aggregate.sum "miles" "m"; Aggregate.avg "fare" "f" ]))));
  for i = 1 to 30 do
    ignore (Db.append db "mileage" [ mile (i mod 4 + 1) i (float_of_int i /. 3.) ])
  done;
  (match Audit.check_view (Db.view db "balance") with
  | Audit.Consistent { rows } -> check_int "rows" 4 rows
  | v -> Alcotest.failf "expected consistent, got %a" Audit.pp_verdict v);
  check_bool "check_db all green" true
    (List.for_all (fun (_, v) -> Audit.is_consistent v) (Audit.check_db db))

let test_detects_corruption () =
  let fx = make () in
  let def = balance_def fx in
  let view = View.create def in
  let feed tuples =
    let sn = Chron.append fx.mileage tuples in
    View.apply_delta view
      (Delta.eval (Sca.body def) ~sn
         ~batch:[ (fx.mileage, List.map (Chron.tag sn) tuples) ])
  in
  feed [ mile 1 100 1. ];
  feed [ mile 2 50 1. ];
  (* corrupt the materialization: replay a delta twice (a classic
     double-apply bug) *)
  View.apply_delta view [ Chron.tag 99 (mile 1 100 1.) ];
  match Audit.check_view view with
  | Audit.Inconsistent { missing; unexpected } ->
      check_int "one row wrong each way" 1 (List.length missing);
      check_int "unexpected" 1 (List.length unexpected);
      check_tuple "the inflated row" (tup [ vi 1; vi 200 ]) (List.hd unexpected)
  | v -> Alcotest.failf "expected inconsistent, got %a" Audit.pp_verdict v

let test_unauditable_without_history () =
  let fx = make ~retention:Chron.Discard () in
  let view = View.create (balance_def fx) in
  let tuples = [ mile 1 1 1. ] in
  let sn = Chron.append fx.mileage tuples in
  View.apply_delta view
    (Delta.eval (Sca.body (balance_def fx)) ~sn
       ~batch:[ (fx.mileage, List.map (Chron.tag sn) tuples) ]);
  match Audit.check_view view with
  | Audit.Unauditable _ -> ()
  | v -> Alcotest.failf "expected unauditable, got %a" Audit.pp_verdict v

let test_window_overflow_becomes_unauditable () =
  let fx = make ~retention:(Chron.Window 2) () in
  let def = balance_def fx in
  let view = View.create def in
  let feed tuples =
    let sn = Chron.append fx.mileage tuples in
    View.apply_delta view
      (Delta.eval (Sca.body def) ~sn
         ~batch:[ (fx.mileage, List.map (Chron.tag sn) tuples) ])
  in
  feed [ mile 1 1 1. ];
  feed [ mile 1 2 1. ];
  check_bool "auditable while the window holds everything" true
    (Audit.is_consistent (Audit.check_view view));
  feed [ mile 1 3 1. ];
  (* the first append fell out of the ring *)
  match Audit.check_view view with
  | Audit.Unauditable _ -> ()
  | v -> Alcotest.failf "expected unauditable, got %a" Audit.pp_verdict v

let suite =
  [
    test "consistent views audit green" test_consistent;
    test "double-applied deltas are caught" test_detects_corruption;
    test "discarded history is unauditable" test_unauditable_without_history;
    test "window overflow ends auditability" test_window_overflow_becomes_unauditable;
  ]
