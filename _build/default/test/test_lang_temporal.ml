(* The temporal and query extensions of the surface language: periodic
   views over calendars, derived windowed views, ad-hoc SELECT over
   views and relations, and clock control. *)

open Chronicle_lang
open Util

let setup () =
  let session = Session.create () in
  ignore
    (Analyze.run_script session
       "CREATE CHRONICLE trades (symbol STRING, shares INT);\n\
        CREATE RELATION listing (sym STRING, exchange STRING) KEY (sym);\n\
        INSERT INTO listing VALUES ('T', 'NYSE'), ('GE', 'NYSE');");
  session

let test_parse_periodic () =
  match
    Parser.parse
      "DEFINE PERIODIC VIEW monthly AS SELECT symbol, SUM(shares) AS s FROM \
       CHRONICLE trades GROUP BY symbol CALENDAR TILING START 0 WIDTH 30 \
       EXPIRE 90;"
  with
  | [ Ast.Define_periodic
        { name = "monthly";
          calendar = { shape = `Tiling; cal_start = 0; cal_width = 30 };
          expire = Some 90;
          _ } ] ->
      ()
  | _ -> Alcotest.fail "periodic parse mismatch"

let test_parse_sliding_and_stride () =
  (match
     Parser.parse
       "DEFINE PERIODIC VIEW w AS SELECT symbol, COUNT(*) AS n FROM CHRONICLE \
        trades GROUP BY symbol CALENDAR SLIDING START 0 WIDTH 30;"
   with
  | [ Ast.Define_periodic { calendar = { shape = `Sliding; _ }; expire = None; _ } ] -> ()
  | _ -> Alcotest.fail "sliding parse mismatch");
  match
    Parser.parse
      "DEFINE PERIODIC VIEW w AS SELECT symbol, COUNT(*) AS n FROM CHRONICLE \
       trades GROUP BY symbol CALENDAR PERIODIC START 5 WIDTH 10 STRIDE 4;"
  with
  | [ Ast.Define_periodic
        { calendar = { shape = `Stride 4; cal_start = 5; cal_width = 10 }; _ } ] ->
      ()
  | _ -> Alcotest.fail "stride parse mismatch"

let test_parse_windowed_and_misc () =
  (match
     Parser.parse
       "DEFINE WINDOWED VIEW vol BUCKETS 30 WIDTH 2 AS SELECT symbol, \
        SUM(shares) AS s FROM CHRONICLE trades GROUP BY symbol;"
   with
  | [ Ast.Define_windowed { buckets = 30; bucket_width = 2; _ } ] -> ()
  | _ -> Alcotest.fail "windowed parse mismatch");
  (match Parser.parse "ADVANCE CLOCK TO 42;" with
  | [ Ast.Advance_clock 42 ] -> ()
  | _ -> Alcotest.fail "advance parse mismatch");
  match Parser.parse "SHOW PERIODIC monthly AT 3; SHOW WINDOWED vol;" with
  | [ Ast.Show_periodic { name = "monthly"; index = Some 3 };
      Ast.Show_windowed "vol" ] ->
      ()
  | _ -> Alcotest.fail "show parse mismatch"

let test_periodic_end_to_end () =
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE PERIODIC VIEW monthly AS SELECT symbol, SUM(shares) AS s FROM \
       CHRONICLE trades GROUP BY symbol CALENDAR TILING START 0 WIDTH 30;\n\
       APPEND INTO trades VALUES ('T', 100);\n\
       ADVANCE CLOCK TO 10;\n\
       APPEND INTO trades VALUES ('T', 50);\n\
       ADVANCE CLOCK TO 35;\n\
       APPEND INTO trades VALUES ('T', 7);\n\
       SHOW PERIODIC monthly AT 0;\n\
       SHOW PERIODIC monthly;"
  in
  match List.rev results with
  | Analyze.Rows (_, current) :: Analyze.Rows (_, month0) :: _ ->
      check_tuples "month 0 froze at 150" [ tup [ vs "T"; vi 150 ] ] month0;
      check_tuples "current month holds 7" [ tup [ vs "T"; vi 7 ] ] current
  | _ -> Alcotest.fail "unexpected results"

let test_windowed_end_to_end () =
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE WINDOWED VIEW vol BUCKETS 3 AS SELECT symbol, SUM(shares) AS s \
       FROM CHRONICLE trades GROUP BY symbol;\n\
       APPEND INTO trades VALUES ('T', 100);\n\
       ADVANCE CLOCK TO 1;\n\
       APPEND INTO trades VALUES ('T', 50);\n\
       ADVANCE CLOCK TO 3;\n\
       APPEND INTO trades VALUES ('T', 7);\n\
       SHOW WINDOWED vol;"
  in
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ ->
      (* bucket 0 (the 100) fell out of the 3-bucket window at chronon 3 *)
      check_tuples "window sum" [ tup [ vs "T"; vi 57 ] ] rows
  | _ -> Alcotest.fail "unexpected results"

let test_adhoc_query_over_view_and_relation () =
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE VIEW volume AS SELECT symbol, SUM(shares) AS total FROM \
       CHRONICLE trades GROUP BY symbol;\n\
       APPEND INTO trades VALUES ('T', 100), ('GE', 10);\n\
       APPEND INTO trades VALUES ('T', 50);\n\
       SELECT symbol, total FROM volume WHERE total > 20;\n\
       SELECT exchange, SUM(total) AS exchange_total FROM volume JOIN listing \
       ON symbol = sym GROUP BY exchange;"
  in
  match List.rev results with
  | Analyze.Rows (_, by_exchange) :: Analyze.Rows (_, filtered) :: _ ->
      check_tuples "filtered view query" [ tup [ vs "T"; vi 150 ] ] filtered;
      check_tuples "join view with relation"
        [ tup [ vs "NYSE"; vi 160 ] ]
        by_exchange
  | _ -> Alcotest.fail "unexpected results"

let test_adhoc_query_unrestricted_where () =
  (* ad-hoc queries may use conjunction/negation — they are outside ℒ *)
  let session = setup () in
  let results =
    Analyze.run_script session
      "DEFINE VIEW volume AS SELECT symbol, SUM(shares) AS total FROM \
       CHRONICLE trades GROUP BY symbol;\n\
       APPEND INTO trades VALUES ('T', 100), ('GE', 10);\n\
       SELECT symbol FROM volume WHERE NOT symbol = 'GE' AND total > 0;"
  in
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ -> check_tuples "negation ok" [ tup [ vs "T" ] ] rows
  | _ -> Alcotest.fail "unexpected results"

let test_query_over_relation () =
  let session = setup () in
  let results =
    Analyze.run_script session "SELECT sym FROM listing WHERE exchange = 'NYSE';"
  in
  match results with
  | [ Analyze.Rows (_, rows) ] ->
      check_tuples "relation query" [ tup [ vs "T" ]; tup [ vs "GE" ] ] rows
  | _ -> Alcotest.fail "unexpected results"

let test_errors () =
  let session = setup () in
  let expect src =
    match Analyze.run_script session src with
    | _ -> Alcotest.failf "expected error on %S" src
    | exception Analyze.Semantic_error _ -> ()
    | exception Chronicle_core.Ca.Ill_formed _ -> ()
  in
  expect "SELECT x FROM nothing;";
  expect "SHOW PERIODIC nope;";
  expect "SHOW WINDOWED nope;";
  expect
    "DEFINE WINDOWED VIEW w BUCKETS 3 AS SELECT symbol FROM CHRONICLE trades;";
  (* projection views are not derivable *)
  expect "ADVANCE CLOCK TO 5; ADVANCE CLOCK TO 1;"
  (* clock cannot go backwards *)

let test_duplicate_periodic_name () =
  let session = setup () in
  let def =
    "DEFINE PERIODIC VIEW m AS SELECT symbol, COUNT(*) AS n FROM CHRONICLE \
     trades GROUP BY symbol CALENDAR TILING START 0 WIDTH 10;"
  in
  ignore (Analyze.run_script session def);
  match Analyze.run_script session def with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Analyze.Semantic_error _ -> ()

let suite =
  [
    test "parse periodic definitions" test_parse_periodic;
    test "parse sliding and stride calendars" test_parse_sliding_and_stride;
    test "parse windowed views, clock, show" test_parse_windowed_and_misc;
    test "periodic views end to end" test_periodic_end_to_end;
    test "windowed views end to end" test_windowed_end_to_end;
    test "ad-hoc queries over views and relations" test_adhoc_query_over_view_and_relation;
    test "ad-hoc WHERE is unrestricted" test_adhoc_query_unrestricted_where;
    test "queries over relations" test_query_over_relation;
    test "error cases" test_errors;
    test "duplicate periodic names rejected" test_duplicate_periodic_name;
  ]
