open Relational
open Util
open Predicate

let s = Schema.make [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ]
let t = tup [ vi 5; vs "hello"; vf 2.5 ]

let holds p = Predicate.eval s p t

let test_atoms () =
  check_bool "eq" true (holds ("a" =% vi 5));
  check_bool "ne" true (holds ("a" <>% vi 6));
  check_bool "lt" true (holds ("c" <% vf 3.));
  check_bool "le" true (holds ("a" <=% vi 5));
  check_bool "gt" false (holds ("a" >% vi 5));
  check_bool "ge" true (holds ("a" >=% vi 5));
  check_bool "string cmp" true (holds ("b" =% vs "hello"))

let test_attr_attr () =
  let s2 = Schema.make [ ("x", Value.TInt); ("y", Value.TInt) ] in
  check_bool "x < y" true (Predicate.eval s2 (Cmp (Attr "x", Lt, Attr "y")) (tup [ vi 1; vi 2 ]));
  check_bool "x = y" false (Predicate.eval s2 (attr_eq "x" "y") (tup [ vi 1; vi 2 ]))

let test_boolean_connectives () =
  check_bool "and" true (holds (And ("a" =% vi 5, "b" =% vs "hello")));
  check_bool "and false" false (holds (And ("a" =% vi 5, "b" =% vs "nope")));
  check_bool "or" true (holds (Or ("a" =% vi 9, "c" >% vf 2.)));
  check_bool "not" true (holds (Not ("a" =% vi 9)));
  check_bool "true" true (holds True);
  check_bool "false" false (holds False)

let test_null_semantics () =
  let tn = tup [ Value.Null; vs "h"; vf 1. ] in
  check_bool "null < k is false" false (Predicate.eval s ("a" <% vi 10) tn);
  check_bool "null > k is false" false (Predicate.eval s ("a" >% vi 0) tn);
  check_bool "null = null" true (Predicate.eval s ("a" =% Value.Null) tn);
  check_bool "null <> k" true (Predicate.eval s ("a" <>% vi 3) tn)

let test_ca_form () =
  check_bool "atom" true (is_ca_form ("a" =% vi 1));
  check_bool "disjunction" true (is_ca_form (Or ("a" =% vi 1, "a" =% vi 2)));
  check_bool "nested disjunction" true
    (is_ca_form (Or (Or ("a" =% vi 1, "a" =% vi 2), "a" >% vi 10)));
  check_bool "conjunction is not Def 4.1 form" false
    (is_ca_form (And ("a" =% vi 1, "a" =% vi 2)));
  check_bool "negation is not" false (is_ca_form (Not ("a" =% vi 1)));
  check_bool "and under or is not" false
    (is_ca_form (Or ("a" =% vi 1, And ("a" =% vi 2, "b" =% vs "x"))))

let test_attrs_and_compile_errors () =
  Alcotest.check (Alcotest.list Alcotest.string) "attrs" [ "a"; "c" ]
    (attrs (Or ("c" >% vf 0., And ("a" =% vi 1, "a" <% vi 9))));
  check_raises_any "unknown attr" (fun () -> Predicate.compile s ("zz" =% vi 0))

let test_conj_disj () =
  check_bool "conj []" true (holds (conj []));
  check_bool "disj []" false (holds (disj []));
  check_bool "conj list" true (holds (conj [ "a" =% vi 5; "c" >% vf 1. ]));
  check_bool "disj list" true (holds (disj [ "a" =% vi 0; "c" >% vf 1. ]))

let suite =
  [
    test "atomic comparisons" test_atoms;
    test "attribute-attribute comparison" test_attr_attr;
    test "boolean connectives" test_boolean_connectives;
    test "null comparison semantics" test_null_semantics;
    test "Definition 4.1 predicate form" test_ca_form;
    test "attrs and compile errors" test_attrs_and_compile_errors;
    test "conj/disj builders" test_conj_disj;
  ]
