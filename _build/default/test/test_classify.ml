open Chronicle_core
open Util
open Fixtures

let tier r = r.Classify.tier
let body_im r = r.Classify.body_im
let view_im r = r.Classify.view_im

let is_not_ca = function Classify.Tier_not_ca _ -> true | _ -> false

let test_ca1 () =
  let fx = make () in
  let r = Classify.ca (select_body fx) in
  check_bool "tier" true (tier r = Classify.Tier_ca1);
  check_bool "IM-Constant" true (body_im r = Classify.IM_constant);
  check_int "u" 0 r.Classify.unions;
  check_int "j" 0 r.Classify.joins

let test_ca_key () =
  let fx = make () in
  let r = Classify.ca (keyjoin_body fx) in
  check_bool "tier" true (tier r = Classify.Tier_ca_key);
  check_bool "IM-log(R)" true (body_im r = Classify.IM_log_r);
  check_int "j" 1 r.Classify.joins

let test_ca_full () =
  let fx = make () in
  let r = Classify.ca (product_body fx) in
  check_bool "tier" true (tier r = Classify.Tier_ca);
  check_bool "IM-R^k" true (body_im r = Classify.IM_poly_r)

let test_non_key_join_demotes () =
  let fx = make () in
  let r =
    Classify.ca
      (Ca.KeyJoinRel (Ca.Chronicle fx.mileage, fx.customers, [ ("acct", "state") ]))
  in
  check_bool "demoted to full CA" true (tier r = Classify.Tier_ca);
  check_bool "has a note" true (r.Classify.notes <> [])

let test_not_ca_cases () =
  let fx = make () in
  let cases =
    [
      ("cross product", Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus));
      ( "theta join",
        Ca.ThetaJoinChron
          ( Relational.Predicate.(Cmp (Attr "miles", Lt, Attr "r.miles")),
            Ca.Chronicle fx.mileage,
            Ca.Chronicle fx.bonus ) );
      ("sn-dropping projection", Ca.Project ([ "acct" ], Ca.Chronicle fx.mileage));
      ( "sn-less grouping",
        Ca.GroupBySeq
          ([ "acct" ], [ Relational.Aggregate.sum "miles" "m" ], Ca.Chronicle fx.mileage) );
    ]
  in
  List.iter
    (fun (name, e) ->
      let r = Classify.ca e in
      check_bool (name ^ " is outside CA") true (is_not_ca (tier r));
      check_bool (name ^ " is IM-C^k") true (body_im r = Classify.IM_poly_c))
    cases

let test_tier_propagates_up () =
  let fx = make () in
  let e = Ca.Select (Relational.Predicate.("miles" >% vi 0), product_body fx) in
  check_bool "select over product stays CA" true (tier (Classify.ca e) = Classify.Tier_ca);
  let e2 = Ca.Union (select_body fx, keyjoin_body fx) in
  (* mixing CA_1 and CA_join: the join dominates *)
  check_bool "union takes the max tier" true
    (tier (Classify.ca e2) = Classify.Tier_ca_key)
  [@warning "-26"]

let test_u_j_counting () =
  let fx = make () in
  let e =
    Ca.Union
      ( Ca.ProductRel (Ca.Chronicle fx.mileage, fx.customers),
        Ca.Union
          ( Ca.ProductRel (Ca.Chronicle fx.bonus, fx.customers),
            Ca.Chronicle fx.mileage ) )
  in
  let r = Classify.ca e in
  check_int "u = 2" 2 r.Classify.unions;
  check_int "j = 2" 2 r.Classify.joins;
  check_bool "formula mentions |R|" true
    (String.length r.Classify.time_formula > 0)

let test_sca_tiers () =
  let fx = make () in
  let mk body =
    Classify.sca
      (Sca.define ~name:"v" ~body
         (Sca.Group_agg ([ "acct" ], [ Relational.Aggregate.sum "miles" "m" ])))
  in
  check_bool "SCA_1 -> IM-Constant" true (view_im (mk (Ca.Chronicle fx.mileage)) = Classify.IM_constant);
  check_bool "SCA_join -> IM-log(R)" true (view_im (mk (keyjoin_body fx)) = Classify.IM_log_r);
  let full =
    Classify.sca
      (Sca.define ~name:"v2" ~body:(product_body fx)
         (Sca.Group_agg ([ "state" ], [ Relational.Aggregate.count_star "n" ])))
  in
  check_bool "SCA -> IM-R^k" true (view_im full = Classify.IM_poly_r)

let test_avg_decomposition_note () =
  let fx = make () in
  let r =
    Classify.sca
      (Sca.define ~name:"v" ~body:(Ca.Chronicle fx.mileage)
         (Sca.Group_agg ([ "acct" ], [ Relational.Aggregate.avg "fare" "avg_fare" ])))
  in
  check_bool "AVG note present" true
    (List.exists (fun n -> String.length n > 0 && String.contains n 'S') r.Classify.notes)

let test_im_order () =
  let open Classify in
  check_bool "const < log" true (im_subseteq IM_constant IM_log_r);
  check_bool "log < poly_r" true (im_subseteq IM_log_r IM_poly_r);
  check_bool "poly_r < poly_c" true (im_subseteq IM_poly_r IM_poly_c);
  check_bool "not backwards" false (im_subseteq IM_poly_c IM_constant);
  check_bool "reflexive" true (im_subseteq IM_log_r IM_log_r)

let test_names () =
  check_string "IM-Constant" "IM-Constant" (Classify.im_class_name Classify.IM_constant);
  check_string "IM-log(R)" "IM-log(R)" (Classify.im_class_name Classify.IM_log_r);
  check_string "IM-R^k" "IM-R^k" (Classify.im_class_name Classify.IM_poly_r);
  check_string "IM-C^k" "IM-C^k" (Classify.im_class_name Classify.IM_poly_c)

let suite =
  [
    test "CA_1 classification" test_ca1;
    test "CA_join classification" test_ca_key;
    test "full CA classification" test_ca_full;
    test "non-key join demotes to CA" test_non_key_join_demotes;
    test "Theorem 4.3 violations are IM-C^k" test_not_ca_cases;
    test "tier propagates through operators" test_tier_propagates_up;
    test "u/j counting and formulas (Thm 4.2)" test_u_j_counting;
    test "Theorem 4.5: SCA tier mapping" test_sca_tiers;
    test "AVG decomposition note" test_avg_decomposition_note;
    test "IM class containment order" test_im_order;
    test "class names" test_names;
  ]
