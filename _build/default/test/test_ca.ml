open Relational
open Chronicle_core
open Util
open Fixtures

let test_schema_of_base () =
  let fx = make () in
  let s = Ca.schema_of (Ca.Chronicle fx.mileage) in
  check_bool "has sn" true (Schema.mem s Seqnum.attr);
  check_int "arity" 4 (Schema.arity s)

let test_schema_of_seqjoin () =
  let fx = make () in
  let renamed =
    Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle fx.mileage)
  in
  let right =
    Ca.Project ([ Seqnum.attr; "miles" ], Ca.Chronicle fx.bonus)
  in
  let s = Ca.schema_of (Ca.SeqJoin (renamed, right)) in
  check_int "one sn kept" 3 (Schema.arity s);
  check_bool "sn" true (Schema.mem s Seqnum.attr);
  check_bool "acct" true (Schema.mem s "acct");
  check_bool "miles" true (Schema.mem s "miles")

let test_check_accepts_ca () =
  let fx = make () in
  Ca.check (select_body fx);
  Ca.check (keyjoin_body fx);
  Ca.check (product_body fx);
  Ca.check
    (Ca.GroupBySeq
       ( [ Seqnum.attr; "acct" ],
         [ Aggregate.sum "miles" "m" ],
         Ca.Chronicle fx.mileage ));
  Ca.check (Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus));
  Ca.check (Ca.Diff (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus))

let expect_ill_formed name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Ca.Ill_formed" name
  | exception Ca.Ill_formed _ -> ()

let test_check_rejects_sn_dropping_project () =
  let fx = make () in
  expect_ill_formed "projection without sn" (fun () ->
      Ca.check (Ca.Project ([ "acct"; "miles" ], Ca.Chronicle fx.mileage)))

let test_check_rejects_sn_less_grouping () =
  let fx = make () in
  expect_ill_formed "grouping without sn" (fun () ->
      Ca.check
        (Ca.GroupBySeq ([ "acct" ], [ Aggregate.sum "miles" "m" ], Ca.Chronicle fx.mileage)))

let test_check_rejects_chronicle_cross () =
  let fx = make () in
  expect_ill_formed "chronicle cross product" (fun () ->
      Ca.check (Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus)));
  (* but the benchmark escape hatch admits it structurally *)
  Ca.check ~allow_non_ca:true
    (Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus))

let test_check_rejects_theta_join () =
  let fx = make () in
  expect_ill_formed "non-equijoin" (fun () ->
      Ca.check
        (Ca.ThetaJoinChron
           ( Predicate.(Cmp (Attr "miles", Lt, Attr "r.miles")),
             Ca.Chronicle fx.mileage,
             Ca.Chronicle fx.bonus )))

let test_check_rejects_non_key_join () =
  let fx = make () in
  expect_ill_formed "non-key join" (fun () ->
      Ca.check
        (Ca.KeyJoinRel (Ca.Chronicle fx.mileage, fx.customers, [ ("acct", "state") ])))

let test_check_rejects_non_ca_predicate () =
  let fx = make () in
  expect_ill_formed "conjunction predicate" (fun () ->
      Ca.check
        (Ca.Select
           ( Predicate.(And ("miles" >% vi 0, "acct" =% vi 1)),
             Ca.Chronicle fx.mileage )))

let test_check_rejects_cross_group () =
  let fx = make () in
  let g2 = Group.create "g2" in
  let foreign = Chron.create ~group:g2 ~name:"foreign" mileage_schema in
  expect_ill_formed "union across groups" (fun () ->
      Ca.check (Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle foreign)))

let test_check_rejects_incompatible_union () =
  let fx = make () in
  let narrow = Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle fx.bonus) in
  expect_ill_formed "arity mismatch" (fun () ->
      Ca.check (Ca.Union (Ca.Chronicle fx.mileage, narrow)))

let test_counters () =
  let fx = make () in
  let e =
    Ca.Union
      ( Ca.ProductRel (Ca.Chronicle fx.mileage, fx.customers),
        Ca.ProductRel (Ca.Chronicle fx.bonus, fx.customers) )
  in
  check_int "unions" 1 (Ca.unions e);
  check_int "joins" 2 (Ca.joins e);
  let e2 = Ca.SeqJoin (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) in
  check_int "seqjoin counts" 1 (Ca.joins e2)

let test_chronicles_and_group () =
  let fx = make () in
  let e = Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) in
  check_int "two chronicles" 2 (List.length (Ca.chronicles e));
  check_bool "depends" true (Ca.depends_on e fx.mileage);
  check_bool "group" true (Group.same (Ca.group_of e) fx.group);
  check_int "relations" 1 (List.length (Ca.relations (keyjoin_body fx)))

let suite =
  [
    test "schema of base chronicle" test_schema_of_base;
    test "schema of sequence join" test_schema_of_seqjoin;
    test "check accepts all CA operators" test_check_accepts_ca;
    test "Thm 4.3: sn-dropping projection rejected" test_check_rejects_sn_dropping_project;
    test "Thm 4.3: sn-less grouping rejected" test_check_rejects_sn_less_grouping;
    test "Thm 4.3: chronicle cross product rejected" test_check_rejects_chronicle_cross;
    test "Thm 4.3: non-equijoin rejected" test_check_rejects_theta_join;
    test "Def 4.2: non-key relation join rejected" test_check_rejects_non_key_join;
    test "Def 4.1: predicate form enforced" test_check_rejects_non_ca_predicate;
    test "chronicle group coherence" test_check_rejects_cross_group;
    test "union compatibility" test_check_rejects_incompatible_union;
    test "u and j counters (Thm 4.2)" test_counters;
    test "chronicles/relations/group accessors" test_chronicles_and_group;
  ]
