open Relational
open Util

let test_push_get () =
  let v = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    check_int "push returns index" i (Vec.push v (i * 2))
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 84 (Vec.get v 42)

let test_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 99;
  Alcotest.check Alcotest.(list int) "after set" [ 1; 99; 3 ] (Vec.to_list v)

let test_bounds () =
  let v = Vec.of_list [ 1 ] in
  check_raises_any "get oob" (fun () -> Vec.get v 1);
  check_raises_any "get negative" (fun () -> Vec.get v (-1));
  check_raises_any "set oob" (fun () -> Vec.set v 5 0)

let test_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check_int "iteri count" 4 (List.length !acc);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

let test_iter_range () =
  let v = Vec.of_list [ 0; 1; 2; 3; 4; 5 ] in
  let acc = ref [] in
  Vec.iter_range (fun x -> acc := x :: !acc) v ~pos:2 ~len:3;
  Alcotest.check Alcotest.(list int) "range" [ 2; 3; 4 ] (List.rev !acc);
  check_raises_any "range oob" (fun () ->
      Vec.iter_range ignore v ~pos:4 ~len:5)

let suite =
  [
    test "push/get across growth" test_push_get;
    test "set" test_set;
    test "bounds checking" test_bounds;
    test "iter/fold/clear" test_iter_fold;
    test "iter_range" test_iter_range;
  ]
