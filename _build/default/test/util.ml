(* Shared helpers for the test suites. *)

open Relational

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.Str s
let vb b = Value.Bool b

let tup l = Tuple.make l

let value_testable = Alcotest.testable Value.pp Value.equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal

let sorted_tuples l = List.sort Tuple.compare l

(* Order-insensitive multiset comparison of tuple collections. *)
let tuples_testable =
  Alcotest.testable
    (fun ppf l ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Tuple.pp)
        l)
    (fun a b ->
      List.equal Tuple.equal (sorted_tuples a) (sorted_tuples b))

let check_tuples = Alcotest.check tuples_testable
let check_tuple = Alcotest.check tuple_testable
let check_value = Alcotest.check value_testable
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let check_float msg expected actual =
  Alcotest.check (Alcotest.float 1e-9) msg expected actual

let test name f = Alcotest.test_case name `Quick f

let check_raises_any msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" msg
  | exception _ -> ()

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
