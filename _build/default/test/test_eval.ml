open Relational
open Chronicle_core
open Util
open Fixtures

let test_chronicle_tuples_retention () =
  let fx = make ~retention:Chron.Full () in
  ignore (Chron.append fx.mileage [ mile 1 10 1. ]);
  check_int "full retention readable" 1
    (List.length (Eval.chronicle_tuples fx.mileage));
  let fx2 = make ~retention:Chron.Discard () in
  check_int "empty discard is fine" 0
    (List.length (Eval.chronicle_tuples fx2.mileage));
  ignore (Chron.append fx2.mileage [ mile 1 10 1. ]);
  check_raises_any "non-empty discard is not" (fun () ->
      ignore (Eval.chronicle_tuples fx2.mileage))

let test_window_partial_history () =
  let fx = make ~retention:(Chron.Window 2) () in
  ignore (Chron.append fx.mileage [ mile 1 10 1. ]);
  ignore (Chron.append fx.mileage [ mile 2 20 1. ]);
  check_int "window still complete" 2
    (List.length (Eval.chronicle_tuples fx.mileage));
  ignore (Chron.append fx.mileage [ mile 3 30 1. ]);
  check_raises_any "window lost history" (fun () ->
      ignore (Eval.chronicle_tuples fx.mileage))

let test_eval_matches_manual () =
  let fx = make () in
  ignore (Chron.append fx.mileage [ mile 1 100 10. ]);
  ignore (Chron.append fx.mileage [ mile 2 200 20. ]);
  let e = Ca.Select (Predicate.("miles" >% vi 150), Ca.Chronicle fx.mileage) in
  check_tuples "filtered eval"
    [ tup [ vi 2; vi 2; vi 200; vf 20. ] ]
    (Eval.eval e)

let test_eval_before_excludes_recent () =
  let fx = make () in
  let sn1 = Chron.append fx.mileage [ mile 1 100 10. ] in
  let sn2 = Chron.append fx.mileage [ mile 2 200 20. ] in
  let e = Ca.Chronicle fx.mileage in
  check_int "before sn1: nothing" 0 (List.length (Eval.eval_before e sn1));
  check_int "before sn2: one" 1 (List.length (Eval.eval_before e sn2));
  check_int "before sn2+1: both" 2 (List.length (Eval.eval_before e (sn2 + 1)));
  (* composite expressions restrict every base *)
  let u = Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) in
  check_int "union before" 1 (List.length (Eval.eval_before u sn2))

let test_eval_groupby_and_join () =
  let fx = make () in
  ignore (Chron.append fx.mileage [ mile 1 100 10.; mile 1 50 5. ]);
  let grouped =
    Ca.GroupBySeq
      ([ Seqnum.attr; "acct" ], [ Aggregate.sum "miles" "m" ], Ca.Chronicle fx.mileage)
  in
  check_tuples "grouped eval" [ tup [ vi 1; vi 1; vi 150 ] ] (Eval.eval grouped);
  let joined = keyjoin_body fx in
  check_int "join eval" 2 (List.length (Eval.eval joined))

let suite =
  [
    test "retention gates full evaluation" test_chronicle_tuples_retention;
    test "ring windows lose auditability when they wrap" test_window_partial_history;
    test "eval matches manual expectation" test_eval_matches_manual;
    test "eval_before excludes the newest batch" test_eval_before_excludes_recent;
    test "eval of grouping and joins" test_eval_groupby_and_join;
  ]
