open Relational
open Chronicle_core
open Chronicle_temporal
open Util

let trade_schema =
  Schema.make [ ("symbol", Value.TStr); ("shares", Value.TInt) ]

let trade sym sh = tup [ vs sym; vi sh ]

let setup ?expire_after ~calendar () =
  let db = Db.create () in
  let c = Db.add_chronicle db ~name:"trades" trade_schema in
  let def =
    Sca.define ~name:"volume" ~body:(Ca.Chronicle c)
      (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "vol" ]))
  in
  let family = Periodic.create ?expire_after ~def ~calendar () in
  Periodic.attach db family;
  (db, family)

let test_tiling_periods () =
  let db, family = setup ~calendar:(Calendar.tiling ~start:0 ~width:10) () in
  (* period 0: chronons 0..9 *)
  ignore (Db.append db "trades" [ trade "T" 100 ]);
  Db.advance_clock db 5;
  ignore (Db.append db "trades" [ trade "T" 50 ]);
  check_int "one active" 1 (List.length (Periodic.active family));
  (* move into period 1 *)
  Db.advance_clock db 12;
  ignore (Db.append db "trades" [ trade "T" 7 ]);
  check_int "still one active" 1 (List.length (Periodic.active family));
  check_int "one finalized" 1 (List.length (Periodic.finalized family));
  (* period 0 total is frozen at 150; period 1 holds 7 *)
  (match Periodic.get family 0 with
  | None -> Alcotest.fail "period 0 missing"
  | Some v ->
      check_bool "period 0 frozen" true
        (View.lookup v [ vs "T" ] = Some (tup [ vs "T"; vi 150 ])));
  (match Periodic.get family 1 with
  | None -> Alcotest.fail "period 1 missing"
  | Some v ->
      check_bool "period 1 running" true
        (View.lookup v [ vs "T" ] = Some (tup [ vs "T"; vi 7 ])));
  check_bool "current is period 1" true
    (match Periodic.current family with Some (1, _) -> true | _ -> false)

let test_overlapping_windows () =
  let db, family =
    setup ~calendar:(Calendar.periodic ~start:0 ~width:10 ~stride:5) ()
  in
  Db.advance_clock db 7;
  (* chronon 7 is covered by windows [0,10) and [5,15) *)
  ignore (Db.append db "trades" [ trade "T" 100 ]);
  check_int "two active windows" 2 (List.length (Periodic.active family));
  List.iter
    (fun (_, v) ->
      check_bool "both got the trade" true
        (View.lookup v [ vs "T" ] = Some (tup [ vs "T"; vi 100 ])))
    (Periodic.active family);
  Db.advance_clock db 12;
  (* chronon 12: [0,10) closed; [5,15) and [10,20) active *)
  ignore (Db.append db "trades" [ trade "T" 1 ]);
  check_int "window slid" 2 (List.length (Periodic.active family));
  (match Periodic.get family 1 with
  | Some v ->
      check_bool "overlapping window sums both" true
        (View.lookup v [ vs "T" ] = Some (tup [ vs "T"; vi 101 ]))
  | None -> Alcotest.fail "window 1 missing")

let test_expiration_bounds_space () =
  let db, family =
    setup ~expire_after:20 ~calendar:(Calendar.tiling ~start:0 ~width:10) ()
  in
  for day = 0 to 99 do
    Db.advance_clock db day;
    ignore (Db.append db "trades" [ trade "T" 1 ])
  done;
  check_bool "live views bounded by expiration" true (Periodic.live_views family <= 4);
  check_bool "old periods expired" true (Periodic.expired_total family > 0);
  check_int "every period was opened" 10 (Periodic.opened_total family);
  check_bool "ancient period gone" true (Periodic.get family 0 = None)

let test_no_appends_no_views () =
  let _db, family = setup ~calendar:(Calendar.tiling ~start:0 ~width:10) () in
  check_int "nothing opened lazily" 0 (Periodic.opened_total family);
  check_bool "no current" true (Periodic.current family = None)

let test_interval_selection_semantics () =
  (* a period's view only sees tuples whose append chronon lies in the
     interval: equivalent to V with an extra interval selection (§5.1) *)
  let db, family = setup ~calendar:(Calendar.tiling ~start:0 ~width:10) () in
  ignore (Db.append db "trades" [ trade "A" 1 ]);
  Db.advance_clock db 15;
  ignore (Db.append db "trades" [ trade "B" 2 ]);
  (match Periodic.get family 0 with
  | Some v ->
      check_bool "period 0 has only A" true
        (View.lookup v [ vs "B" ] = None && View.lookup v [ vs "A" ] <> None)
  | None -> Alcotest.fail "period 0 missing");
  match Periodic.get family 1 with
  | Some v ->
      check_bool "period 1 has only B" true
        (View.lookup v [ vs "A" ] = None && View.lookup v [ vs "B" ] <> None)
  | None -> Alcotest.fail "period 1 missing"

let suite =
  [
    test "tiling billing periods open/close lazily" test_tiling_periods;
    test "overlapping windows all maintained" test_overlapping_windows;
    test "expiration bounds live views (§5.1)" test_expiration_bounds_space;
    test "no appends, no views" test_no_appends_no_views;
    test "per-interval selection semantics" test_interval_selection_semantics;
  ]
