open Relational
open Util

let schema =
  Schema.make
    [ ("dept", Value.TStr); ("who", Value.TStr); ("pay", Value.TInt) ]

let rows =
  [
    tup [ vs "eng"; vs "a"; vi 100 ];
    tup [ vs "eng"; vs "b"; vi 200 ];
    tup [ vs "ops"; vs "c"; vi 50 ];
    tup [ vs "eng"; vs "d"; vi 300 ];
  ]

let test_batch_groupby () =
  let out_schema, out =
    Groupby.run schema rows ~group_by:[ "dept" ]
      ~aggs:[ Aggregate.sum "pay" "total"; Aggregate.count_star "n"; Aggregate.max_ "pay" "top" ]
  in
  check_int "schema arity" 4 (Schema.arity out_schema);
  check_tuples "grouped"
    [ tup [ vs "eng"; vi 600; vi 3; vi 300 ]; tup [ vs "ops"; vi 50; vi 1; vi 50 ] ]
    out

let test_group_order_first_appearance () =
  let _, out =
    Groupby.run schema rows ~group_by:[ "dept" ] ~aggs:[ Aggregate.count_star "n" ]
  in
  Alcotest.check (Alcotest.list Alcotest.string) "order"
    [ "eng"; "ops" ]
    (List.map (fun t -> match Tuple.get t 0 with Value.Str s -> s | _ -> "?") out)

let test_empty_input () =
  let _, out = Groupby.run schema [] ~group_by:[ "dept" ] ~aggs:[ Aggregate.count_star "n" ] in
  check_tuples "no groups" [] out

let test_no_group_attrs () =
  (* grouping on [] = one global group *)
  let _, out = Groupby.run schema rows ~group_by:[] ~aggs:[ Aggregate.sum "pay" "total" ] in
  check_tuples "global aggregate" [ tup [ vi 650 ] ] out

let test_incremental_table () =
  let t = Groupby.create schema ~group_by:[ "dept" ] ~aggs:[ Aggregate.sum "pay" "s" ] in
  List.iter (Groupby.step t) rows;
  check_int "groups" 2 (Groupby.group_count t);
  check_bool "current eng" true
    (Groupby.current t [ vs "eng" ] = Some (tup [ vs "eng"; vi 600 ]));
  check_bool "current missing" true (Groupby.current t [ vs "hr" ] = None);
  Groupby.step t (tup [ vs "hr"; vs "z"; vi 10 ]);
  check_int "new group" 3 (Groupby.group_count t);
  check_tuples "result matches batch"
    (snd (Groupby.run schema (rows @ [ tup [ vs "hr"; vs "z"; vi 10 ] ])
            ~group_by:[ "dept" ] ~aggs:[ Aggregate.sum "pay" "s" ]))
    (Groupby.result t)

let qcheck_incremental_equals_batch =
  let gen =
    QCheck.(list (pair (int_bound 4) (int_bound 100)))
  in
  qtest "incremental table = batch GROUPBY on random streams" gen (fun pairs ->
      let s2 = Schema.make [ ("g", Value.TInt); ("x", Value.TInt) ] in
      let tuples = List.map (fun (g, x) -> tup [ vi g; vi x ]) pairs in
      let aggs =
        [ Aggregate.sum "x" "s"; Aggregate.min_ "x" "lo"; Aggregate.avg "x" "m" ]
      in
      let t = Groupby.create s2 ~group_by:[ "g" ] ~aggs in
      List.iter (Groupby.step t) tuples;
      let _, batch = Groupby.run s2 tuples ~group_by:[ "g" ] ~aggs in
      List.equal Tuple.equal (sorted_tuples (Groupby.result t)) (sorted_tuples batch))

let suite =
  [
    test "batch GROUPBY(R, GL, AL)" test_batch_groupby;
    test "group order is first appearance" test_group_order_first_appearance;
    test "empty input" test_empty_input;
    test "grouping on no attributes" test_no_group_attrs;
    test "incremental group table" test_incremental_table;
    qcheck_incremental_equals_batch;
  ]
