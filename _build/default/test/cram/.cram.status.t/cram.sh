  $ cat > status.cdl <<CDL
  > CREATE CHRONICLE t (a INT, x INT) RETAIN FULL;
  > DEFINE VIEW sums AS SELECT a, SUM(x) AS s FROM CHRONICLE t GROUP BY a;
  > APPEND INTO t VALUES (1, 10), (2, 20);
  > APPEND INTO t VALUES (1, 5);
  > SHOW STATS;
  > SHOW AUDIT;
  > CDL
  $ chronicle-cli run status.cdl
  $ cat > plan.cdl <<CDL
  > CREATE CHRONICLE t (a INT, x INT);
  > CREATE RELATION r (k INT, seg STRING) KEY (k);
  > DEFINE VIEW v AS SELECT seg, SUM(x) AS s FROM CHRONICLE t JOIN r ON a = k WHERE x > 0 GROUP BY seg;
  > SHOW PLAN v;
  > CDL
  $ chronicle-cli run plan.cdl
