Persistent views survive restarts without replaying the chronicle:

  $ cat > day1.cdl <<CDL
  > CREATE CHRONICLE txns (card INT, amount FLOAT);
  > DEFINE VIEW spend AS SELECT card, SUM(amount) AS total, COUNT(*) AS n FROM CHRONICLE txns GROUP BY card;
  > APPEND INTO txns VALUES (1, 25.0), (2, 10.0);
  > APPEND INTO txns VALUES (1, 5.5);
  > CDL
  $ chronicle-cli run --save state.sexp day1.cdl
  created txns
  defined view spend: CA_1 (IM-Constant)
  appended 2 row(s) to txns at sn 1
  appended 1 row(s) to txns at sn 2
  saved snapshot state.sexp

The chronicle itself was never stored (retention defaults to discard),
yet the restored views continue exactly where they left off:

  $ cat > day2.cdl <<CDL
  > APPEND INTO txns VALUES (2, 4.5);
  > SHOW VIEW spend;
  > CDL
  $ chronicle-cli run --load state.sexp day2.cdl
  restored snapshot state.sexp
  appended 1 row(s) to txns at sn 3
  (card:int,
  total:float,
  n:int)
  (card=1, total=30.5, n=2)
  (card=2, total=14.5, n=2)

Session state — open billing periods, window buffers, partial event
instances — also survives:

  $ cat > day3.cdl <<CDL
  > DEFINE PERIODIC VIEW monthly AS SELECT card, SUM(amount) AS total FROM CHRONICLE txns GROUP BY card CALENDAR TILING START 0 WIDTH 30;
  > DEFINE WINDOWED VIEW recent BUCKETS 5 AS SELECT card, SUM(amount) AS total FROM CHRONICLE txns GROUP BY card;
  > DEFINE RULE pair ON txns KEY (card) WITHIN 4 WHEN REPEAT 2 EVENT e (amount > 3.0);
  > ADVANCE CLOCK TO 2;
  > APPEND INTO txns VALUES (1, 9.0);
  > CDL
  $ chronicle-cli run --load state.sexp --save state2.sexp day3.cdl
  restored snapshot state.sexp
  defined periodic view monthly (0 interval views live)
  defined windowed view recent (5 buckets)
  defined rule pair on txns
  clock advanced to 2
  appended 1 row(s) to txns at sn 3
  saved snapshot state2.sexp

The rule's half-finished pattern instance crosses the restart: one more
qualifying event completes it.

  $ cat > day4.cdl <<CDL
  > ADVANCE CLOCK TO 3;
  > APPEND INTO txns VALUES (1, 8.0);
  > SHOW ALERTS;
  > SHOW WINDOWED recent;
  > SHOW PERIODIC monthly;
  > CDL
  $ chronicle-cli run --load state2.sexp day4.cdl
  restored snapshot state2.sexp
  clock advanced to 3
  appended 1 row(s) to txns at sn 4
  (rule:string,
  key:string,
  started:int,
  fired:int,
  sn:int)
  (rule="pair", key="(1)", started=2, fired=3, sn=4)
  (card:int,
  total:float)
  (card=1, total=17)
  (card:int,
  total:float)
  (card=1, total=17)
