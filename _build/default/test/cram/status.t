Operational introspection: SHOW STATS and SHOW AUDIT:

  $ cat > status.cdl <<CDL
  > CREATE CHRONICLE t (a INT, x INT) RETAIN FULL;
  > DEFINE VIEW sums AS SELECT a, SUM(x) AS s FROM CHRONICLE t GROUP BY a;
  > APPEND INTO t VALUES (1, 10), (2, 20);
  > APPEND INTO t VALUES (1, 5);
  > SHOW STATS;
  > SHOW AUDIT;
  > CDL
  $ chronicle-cli run status.cdl
  created t
  defined view sums: CA_1 (IM-Constant)
  appended 2 row(s) to t at sn 1
  appended 1 row(s) to t at sn 2
  (kind:string,
  name:string,
  metric:string,
  value:int)
  (kind="chronicle", name="t", metric="appended", value=3)
  (kind="chronicle", name="t", metric="retained", value=3)
  (kind="view", name="sums", metric="rows", value=2)
  (kind="view", name="sums", metric="batches", value=2)
  (kind="registry", name="guards", metric="checked", value=2)
  (kind="registry", name="guards", metric="skipped", value=0)
  (view:string,
  verdict:string)
  (view="sums", verdict="consistent (2 rows)")

SHOW PLAN renders the algebra, the rewriter's result and the
classification:

  $ cat > plan.cdl <<CDL
  > CREATE CHRONICLE t (a INT, x INT);
  > CREATE RELATION r (k INT, seg STRING) KEY (k);
  > DEFINE VIEW v AS SELECT seg, SUM(x) AS s FROM CHRONICLE t JOIN r ON a = k WHERE x > 0 GROUP BY seg;
  > SHOW PLAN v;
  > CDL
  $ chronicle-cli run plan.cdl
  created t
  created r
  defined view v: CA_join (IM-log(R))
  view v
  body:      (σ[x > 0](t) ⋈key[a=k] r)
  optimized: (σ[x > 0](t) ⋈key[a=k] r)
  summarize: group by (seg) computing SUM(x) AS s
  tier: CA_join
  body Δ class: IM-log(R)
  view class: IM-log(R)
  u=0 j=1
  time: O(1^1 log|R|)
  space: O(1^1)
