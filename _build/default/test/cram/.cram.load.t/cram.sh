  $ cat > people.csv <<CSV
  > cust,state
  > 1,NJ
  > 2,NY
  > CSV
  $ cat > miles.csv <<CSV
  > acct,miles
  > 1,100
  > 2,200
  > 1,50
  > CSV
  $ cat > script.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > CREATE RELATION customers (cust INT, state STRING) KEY (cust);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > LOAD INTO customers FROM 'people.csv';
  > LOAD INTO mileage FROM 'miles.csv';
  > SHOW VIEW balance;
  > CDL
  $ chronicle-cli run script.cdl
  $ cat > loadbad.cdl <<CDL
  > CREATE CHRONICLE t (a INT);
  > LOAD INTO t FROM 'nope.csv';
  > CDL
  $ chronicle-cli run loadbad.cdl
