  $ cat > day1.cdl <<CDL
  > CREATE CHRONICLE txns (card INT, amount FLOAT);
  > DEFINE VIEW spend AS SELECT card, SUM(amount) AS total, COUNT(*) AS n FROM CHRONICLE txns GROUP BY card;
  > APPEND INTO txns VALUES (1, 25.0), (2, 10.0);
  > APPEND INTO txns VALUES (1, 5.5);
  > CDL
  $ chronicle-cli run --save state.sexp day1.cdl
  $ cat > day2.cdl <<CDL
  > APPEND INTO txns VALUES (2, 4.5);
  > SHOW VIEW spend;
  > CDL
  $ chronicle-cli run --load state.sexp day2.cdl
  $ cat > day3.cdl <<CDL
  > DEFINE PERIODIC VIEW monthly AS SELECT card, SUM(amount) AS total FROM CHRONICLE txns GROUP BY card CALENDAR TILING START 0 WIDTH 30;
  > DEFINE WINDOWED VIEW recent BUCKETS 5 AS SELECT card, SUM(amount) AS total FROM CHRONICLE txns GROUP BY card;
  > DEFINE RULE pair ON txns KEY (card) WITHIN 4 WHEN REPEAT 2 EVENT e (amount > 3.0);
  > ADVANCE CLOCK TO 2;
  > APPEND INTO txns VALUES (1, 9.0);
  > CDL
  $ chronicle-cli run --load state.sexp --save state2.sexp day3.cdl
  $ cat > day4.cdl <<CDL
  > ADVANCE CLOCK TO 3;
  > APPEND INTO txns VALUES (1, 8.0);
  > SHOW ALERTS;
  > SHOW WINDOWED recent;
  > SHOW PERIODIC monthly;
  > CDL
  $ chronicle-cli run --load state2.sexp day4.cdl
