  $ chronicle-cli demo | tail -n 14
  $ chronicle-cli run billing.cdl
  $ chronicle-cli run fraud.cdl
  $ chronicle-cli run bad.cdl
