The demo subcommand runs a canned frequent-flyer script:

  $ chronicle-cli demo | tail -n 14
  balance:int,
  flights:int)
  (acct=1, balance=5130, flights=2)
  (acct=2, balance=2475, flights=1)
  (state:string,
  total:int)
  (state="NJ", total=5130)
  (state="NY", total=2475)
  tier: CA_join
  body Δ class: IM-log(R)
  view class: IM-log(R)
  u=0 j=1
  time: O(1^1 log|R|)
  space: O(1^1)

A billing scenario with periodic, windowed and ad-hoc queries:

  $ chronicle-cli run billing.cdl
  parse error at line 4: expected an identifier, found PLAN
  [1]

Event rules fire through the language:

  $ chronicle-cli run fraud.cdl
  created txns
  defined rule drain on txns
  appended 1 row(s) to txns at sn 1
  clock advanced to 2
  appended 1 row(s) to txns at sn 2
  clock advanced to 4
  appended 1 row(s) to txns at sn 3
  (rule:string,
  key:string,
  started:int,
  fired:int,
  sn:int)
  (rule="drain", key="(7)", started=0, fired=4, sn=3)

Definition errors are reported, not crashed on:

  $ chronicle-cli run bad.cdl
  created t
  semantic error: WHERE conjunct (NOT (a = 1)) is not a disjunction of comparisons; the chronicle algebra (Definition 4.1) admits only such selections
  [1]
