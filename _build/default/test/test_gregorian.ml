open Chronicle_temporal
open Util

let d y m dd = { Gregorian.year = y; month = m; day = dd }

let test_epoch () =
  check_int "1970-01-01 is day 0" 0 (Gregorian.to_days (d 1970 1 1));
  check_int "epoch was a Thursday" 4 (Gregorian.day_of_week 0);
  check_bool "of_days 0" true (Gregorian.of_days 0 = d 1970 1 1)

let test_known_dates () =
  (* 2000-03-01 = 11017 days after epoch (leap century year) *)
  check_int "2000-03-01" 11017 (Gregorian.to_days (d 2000 3 1));
  check_int "2026-07-08" 20642 (Gregorian.to_days (d 2026 7 8));
  check_int "a Wednesday" 3 (Gregorian.day_of_week 20642);
  check_bool "before epoch" true (Gregorian.to_days (d 1969 12 31) = -1);
  check_bool "of_days before epoch" true (Gregorian.of_days (-1) = d 1969 12 31)

let test_leap_years () =
  check_bool "2000 leap" true (Gregorian.is_leap_year 2000);
  check_bool "1900 not leap" false (Gregorian.is_leap_year 1900);
  check_bool "2024 leap" true (Gregorian.is_leap_year 2024);
  check_bool "2023 not" false (Gregorian.is_leap_year 2023);
  check_int "feb 2024" 29 (Gregorian.days_in_month ~year:2024 ~month:2);
  check_int "feb 2023" 28 (Gregorian.days_in_month ~year:2023 ~month:2)

let test_invalid_dates () =
  check_raises_any "month 13" (fun () -> ignore (Gregorian.to_days (d 2024 13 1)));
  check_raises_any "feb 30" (fun () -> ignore (Gregorian.to_days (d 2023 2 29)))

let qcheck_roundtrip =
  qtest "to_days/of_days roundtrip over ±200 years"
    QCheck.(int_range (-73000) 73000)
    (fun days -> Gregorian.to_days (Gregorian.of_days days) = days)

let test_month_calendar () =
  (* Jan..Mar 2024: widths 31, 29 (leap), 31 *)
  let cal = Gregorian.months ~from_year:2024 ~from_month:1 ~count:3 in
  let width i =
    match Calendar.interval cal i with
    | Some iv -> Interval.width iv
    | None -> -1
  in
  check_int "jan" 31 (width 0);
  check_int "leap feb" 29 (width 1);
  check_int "mar" 31 (width 2);
  (* a mid-February chronon lands in interval 1 *)
  let feb15 = Gregorian.to_days (d 2024 2 15) in
  Alcotest.check (Alcotest.list Alcotest.int) "covering" [ 1 ]
    (Calendar.covering cal feb15);
  (* year boundary *)
  let dec = Gregorian.months ~from_year:2023 ~from_month:12 ~count:2 in
  check_bool "december to january" true
    (Calendar.interval dec 1
    = Some
        (Interval.make
           ~start:(Gregorian.month_start ~year:2024 ~month:1)
           ~stop:(Gregorian.month_start ~year:2024 ~month:2)))

let test_billing_anchor_clamps () =
  (* anchored on the 31st: February clamps to its last day *)
  let cal =
    Gregorian.billing_months ~from_year:2023 ~from_month:1 ~count:3 ~anchor_day:31
  in
  let iv i = Option.get (Calendar.interval cal i) in
  check_int "jan 31 start" (Gregorian.to_days (d 2023 1 31)) (iv 0).Interval.start;
  check_int "feb clamps to 28" (Gregorian.to_days (d 2023 2 28)) (iv 1).Interval.start;
  check_int "mar 31 stop" (Gregorian.to_days (d 2023 3 31)) (iv 1).Interval.stop;
  check_raises_any "anchor 0" (fun () ->
      ignore (Gregorian.billing_months ~from_year:2023 ~from_month:1 ~count:1 ~anchor_day:0))

let test_periodic_views_on_real_months () =
  (* end-to-end: monthly statements with true month lengths *)
  let open Chronicle_core in
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~name:"calls"
       (Relational.Schema.make [ ("number", Relational.Value.TInt); ("cost", Relational.Value.TFloat) ]));
  let def =
    Sca.define ~name:"monthly"
      ~body:(Ca.Chronicle (Db.chronicle db "calls"))
      (Sca.Group_agg ([ "number" ], [ Relational.Aggregate.sum "cost" "total" ]))
  in
  let family =
    Periodic.create ~def
      ~calendar:(Gregorian.months ~from_year:2024 ~from_month:1 ~count:3)
      ()
  in
  Periodic.attach db family;
  let post date cost =
    Db.advance_clock db (Gregorian.to_days date);
    ignore
      (Db.append db "calls"
         [ Relational.Tuple.make [ Relational.Value.Int 1; Relational.Value.Float cost ] ])
  in
  (* the clock starts at 0 = 1970; jump straight to 2024 *)
  post (d 2024 1 10) 5.;
  post (d 2024 1 31) 2.;
  post (d 2024 2 29) 3.;
  (* leap day lands in February's statement *)
  (match Periodic.get family 0 with
  | Some v ->
      check_bool "january total" true
        (View.lookup v [ Relational.Value.Int 1 ]
        = Some (Relational.Tuple.make [ Relational.Value.Int 1; Relational.Value.Float 7. ]))
  | None -> Alcotest.fail "january statement missing");
  match Periodic.get family 1 with
  | Some v ->
      check_bool "february total" true
        (View.lookup v [ Relational.Value.Int 1 ]
        = Some (Relational.Tuple.make [ Relational.Value.Int 1; Relational.Value.Float 3. ]))
  | None -> Alcotest.fail "february statement missing"

let suite =
  [
    test "epoch" test_epoch;
    test "known dates and weekdays" test_known_dates;
    test "leap years" test_leap_years;
    test "invalid dates rejected" test_invalid_dates;
    qcheck_roundtrip;
    test "month calendars have true widths" test_month_calendar;
    test "billing anchors clamp (Jan 31 -> Feb 28)" test_billing_anchor_clamps;
    test "periodic views over real months" test_periodic_views_on_real_months;
  ]
