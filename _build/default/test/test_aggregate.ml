open Relational
open Util

let step_all func values =
  Aggregate.final func (List.fold_left (Aggregate.step func) (Aggregate.init func) values)

let test_count () =
  check_value "count" (vi 3) (step_all Aggregate.Count [ vi 1; vi 5; vi 9 ]);
  check_value "count skips null" (vi 2)
    (step_all Aggregate.Count [ vi 1; Value.Null; vi 9 ]);
  check_value "empty count" (vi 0) (step_all Aggregate.Count [])

let test_sum () =
  check_value "int sum" (vi 15) (step_all Aggregate.Sum [ vi 4; vi 5; vi 6 ]);
  check_value "mixed sum" (vf 7.5) (step_all Aggregate.Sum [ vi 3; vf 4.5 ]);
  check_value "null skipped" (vi 5) (step_all Aggregate.Sum [ vi 5; Value.Null ]);
  check_value "empty sum is null" Value.Null (step_all Aggregate.Sum [])

let test_min_max () =
  check_value "min" (vi 2) (step_all Aggregate.Min [ vi 7; vi 2; vi 5 ]);
  check_value "max" (vi 7) (step_all Aggregate.Max [ vi 7; vi 2; vi 5 ]);
  check_value "min strings" (vs "a") (step_all Aggregate.Min [ vs "b"; vs "a" ]);
  check_value "empty min is null" Value.Null (step_all Aggregate.Min [])

let test_avg () =
  check_value "avg" (vf 5.) (step_all Aggregate.Avg [ vi 4; vi 6 ]);
  check_value "avg skips null" (vf 4.)
    (step_all Aggregate.Avg [ vi 4; Value.Null ]);
  check_value "empty avg is null" Value.Null (step_all Aggregate.Avg [])

let test_var_stddev () =
  (* population variance of 2,4,4,4,5,5,7,9 = 4; stddev = 2 *)
  let xs = List.map vi [ 2; 4; 4; 4; 5; 5; 7; 9 ] in
  check_value "var" (vf 4.) (step_all Aggregate.Var xs);
  check_value "stddev" (vf 2.) (step_all Aggregate.Stddev xs);
  check_value "single point" (vf 0.) (step_all Aggregate.Var [ vi 7 ]);
  check_value "empty var is null" Value.Null (step_all Aggregate.Var []);
  check_value "null skipped" (vf 0.)
    (step_all Aggregate.Stddev [ vi 3; Value.Null; vi 3 ])

let test_merge_against_batch () =
  (* merge of partial states over a split equals the batch over the whole *)
  let values = List.init 20 (fun i -> vi ((i * 7 mod 13) - 6)) in
  let left, right =
    List.partition (fun v -> Value.compare v (vi 0) < 0) values
  in
  List.iter
    (fun func ->
      let part l = List.fold_left (Aggregate.step func) (Aggregate.init func) l in
      let merged = Aggregate.final func (Aggregate.merge func (part left) (part right)) in
      check_value
        (Printf.sprintf "merge %s" (Aggregate.func_name func))
        (Aggregate.batch func values) merged)
    [ Aggregate.Count; Aggregate.Sum; Aggregate.Min; Aggregate.Max;
      Aggregate.Avg; Aggregate.Var; Aggregate.Stddev ]

let test_merge_with_empty () =
  List.iter
    (fun func ->
      let st = List.fold_left (Aggregate.step func) (Aggregate.init func) [ vi 3; vi 8 ] in
      let merged = Aggregate.merge func st (Aggregate.init func) in
      check_value
        (Printf.sprintf "merge empty %s" (Aggregate.func_name func))
        (Aggregate.final func st) (Aggregate.final func merged))
    [ Aggregate.Count; Aggregate.Sum; Aggregate.Min; Aggregate.Max;
      Aggregate.Avg; Aggregate.Var; Aggregate.Stddev ]

let test_output_ty () =
  check_bool "count ty" true (Aggregate.output_ty Aggregate.Count None = Value.TInt);
  check_bool "avg ty" true (Aggregate.output_ty Aggregate.Avg (Some Value.TInt) = Value.TFloat);
  check_bool "stddev ty" true
    (Aggregate.output_ty Aggregate.Stddev (Some Value.TInt) = Value.TFloat);
  check_bool "sum keeps ty" true (Aggregate.output_ty Aggregate.Sum (Some Value.TFloat) = Value.TFloat);
  check_raises_any "sum needs arg" (fun () -> Aggregate.output_ty Aggregate.Sum None)

let test_func_names () =
  check_bool "roundtrip" true
    (List.for_all
       (fun f -> Aggregate.func_of_name (Aggregate.func_name f) = Some f)
       [ Aggregate.Count; Aggregate.Sum; Aggregate.Min; Aggregate.Max;
      Aggregate.Avg; Aggregate.Var; Aggregate.Stddev ]);
  check_bool "case insensitive" true (Aggregate.func_of_name "sum" = Some Aggregate.Sum);
  check_bool "unknown" true (Aggregate.func_of_name "MEDIAN" = None)

let test_result_schema () =
  let s = Schema.make [ ("g", Value.TStr); ("x", Value.TInt) ] in
  let out =
    Aggregate.result_schema s [ "g" ]
      [ Aggregate.sum "x" "total"; Aggregate.count_star "n" ]
  in
  check_int "arity" 3 (Schema.arity out);
  check_bool "total ty" true (Schema.ty out "total" = Value.TInt);
  check_bool "n ty" true (Schema.ty out "n" = Value.TInt)

let qcheck_incremental_equals_batch =
  let gen = QCheck.(list small_signed_int) in
  qtest "single-step increments agree with O(n) batch (incremental computability)"
    gen (fun ints ->
      let values = List.map vi ints in
      List.for_all
        (fun func ->
          Value.equal (step_all func values) (Aggregate.batch func values))
        [ Aggregate.Count; Aggregate.Sum; Aggregate.Min; Aggregate.Max;
      Aggregate.Avg; Aggregate.Var; Aggregate.Stddev ])

let suite =
  [
    test "COUNT" test_count;
    test "SUM" test_sum;
    test "MIN/MAX" test_min_max;
    test "AVG decomposition" test_avg;
    test "VAR/STDDEV decomposition" test_var_stddev;
    test "merge = batch over a partition" test_merge_against_batch;
    test "merge with empty state is neutral" test_merge_with_empty;
    test "output types" test_output_ty;
    test "function names" test_func_names;
    test "GROUPBY result schema" test_result_schema;
    qcheck_incremental_equals_batch;
  ]
