open Relational
open Chronicle_core
open Chronicle_lang
open Util

let setup_script =
  "CREATE CHRONICLE mileage (acct INT, miles INT, fare FLOAT);\n\
   CREATE RELATION customers (cust INT, state STRING) KEY (cust);\n\
   INSERT INTO customers VALUES (1, 'NJ'), (2, 'NY');"

let setup () =
  let session = Session.create () in
  ignore (Analyze.run_script session setup_script);
  session

let test_end_to_end_script () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let results =
    Analyze.run_script session
      "DEFINE VIEW balance AS SELECT acct, SUM(miles) AS balance FROM \
       CHRONICLE mileage GROUP BY acct;\n\
       APPEND INTO mileage VALUES (1, 100, 10.0), (2, 200, 20.0);\n\
       APPEND INTO mileage VALUES (1, 50, 5.0);\n\
       SHOW VIEW balance;"
  in
  match results with
  | [ Analyze.Defined { view = "balance"; report };
      Analyze.Appended { sn = 1; count = 2; _ };
      Analyze.Appended { sn = 2; count = 1; _ };
      Analyze.Rows (_, rows) ] ->
      check_bool "SCA_1" true (report.Classify.view_im = Classify.IM_constant);
      check_tuples "balances" [ tup [ vi 1; vi 150 ]; tup [ vi 2; vi 200 ] ] rows
  | _ -> Alcotest.fail "unexpected script results"

let test_join_view_classified_log () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let results =
    Analyze.run_script session
      "DEFINE VIEW by_state AS SELECT state, SUM(miles) AS total FROM \
       CHRONICLE mileage JOIN customers ON acct = cust GROUP BY state;\n\
       APPEND INTO mileage VALUES (1, 100, 10.0);\n\
       SHOW VIEW by_state;"
  in
  match results with
  | [ Analyze.Defined { report; _ }; _; Analyze.Rows (_, rows) ] ->
      check_bool "SCA_join -> IM-log(R)" true
        (report.Classify.view_im = Classify.IM_log_r);
      check_tuples "NJ total" [ tup [ vs "NJ"; vi 100 ] ] rows
  | _ -> Alcotest.fail "unexpected results"

let test_where_conjunction_becomes_nested_selects () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let def =
    Analyze.compile_select (Session.db session) ~name:"v"
      (Parser.parse_select
         "SELECT acct, COUNT(*) AS n FROM CHRONICLE mileage WHERE miles > 0 \
          AND fare < 100.0 GROUP BY acct")
  in
  (* both conjuncts are CA-form atoms; the body must be accepted *)
  let r = Classify.sca def in
  check_bool "classified SCA_1" true (r.Classify.view_im = Classify.IM_constant);
  (* nested selects, not one AND *)
  let rec count_selects = function
    | Ca.Select (_, e) -> 1 + count_selects e
    | Ca.Chronicle _ -> 0
    | _ -> Alcotest.fail "unexpected body shape"
  in
  check_int "two nested selections" 2 (count_selects (Sca.body def))

let test_where_pushdown_below_join () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let def =
    Analyze.compile_select (Session.db session) ~name:"v"
      (Parser.parse_select
         "SELECT state, COUNT(*) AS n FROM CHRONICLE mileage JOIN customers \
          ON acct = cust WHERE miles > 0 AND state = 'NJ' GROUP BY state")
  in
  (* miles > 0 pushes below the join; state = 'NJ' stays above *)
  (match Sca.body def with
  | Ca.Select (p, Ca.KeyJoinRel (Ca.Select (q, Ca.Chronicle _), _, _)) ->
      check_bool "above mentions state" true
        (List.mem "state" (Predicate.attrs p));
      check_bool "below mentions miles" true (List.mem "miles" (Predicate.attrs q))
  | _ -> Alcotest.fail "pushdown shape mismatch");
  check_bool "still IM-log(R)" true
    ((Classify.sca def).Classify.view_im = Classify.IM_log_r)

let test_projection_view () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let results =
    Analyze.run_script session
      "DEFINE VIEW accts AS SELECT acct FROM CHRONICLE mileage;\n\
       APPEND INTO mileage VALUES (1, 10, 1.0);\n\
       APPEND INTO mileage VALUES (1, 20, 2.0);\n\
       SHOW VIEW accts;"
  in
  match List.rev results with
  | Analyze.Rows (_, rows) :: _ ->
      check_tuples "distinct accounts" [ tup [ vi 1 ] ] rows
  | _ -> Alcotest.fail "unexpected results"

let expect_sem_error f =
  match f () with
  | _ -> Alcotest.fail "expected a semantic/algebra error"
  | exception Analyze.Semantic_error _ -> ()
  | exception Ca.Ill_formed _ -> ()

let test_semantic_errors () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let compile src = Analyze.compile_select (Session.db session) ~name:"v" (Parser.parse_select src) in
  expect_sem_error (fun () -> compile "SELECT acct FROM CHRONICLE nope");
  expect_sem_error (fun () ->
      compile "SELECT acct, SUM(miles) AS m FROM CHRONICLE mileage GROUP BY state");
  (* acct in SELECT but not in GROUP BY *)
  expect_sem_error (fun () ->
      compile "SELECT acct, SUM(miles) AS m FROM CHRONICLE mileage GROUP BY miles");
  (* GROUP BY without aggregates *)
  expect_sem_error (fun () ->
      compile "SELECT acct FROM CHRONICLE mileage GROUP BY acct");
  (* non-key join *)
  expect_sem_error (fun () ->
      compile
        "SELECT state, COUNT(*) AS n FROM CHRONICLE mileage JOIN customers ON \
         acct = state GROUP BY state");
  (* NOT is not Definition 4.1 form *)
  expect_sem_error (fun () ->
      compile "SELECT acct FROM CHRONICLE mileage WHERE NOT miles = 1");
  (* disjunction across a conjunction is not splittable into CA form *)
  expect_sem_error (fun () ->
      compile
        "SELECT acct FROM CHRONICLE mileage WHERE miles = 1 OR (miles = 2 AND \
         fare > 0.0)");
  (* unknown attribute in WHERE without a join *)
  expect_sem_error (fun () ->
      compile "SELECT acct FROM CHRONICLE mileage WHERE state = 'NJ'")

let test_show_classify () =
  let session = setup () in
  let db = Session.db session in
  ignore db;
  let results =
    Analyze.run_script session
      "DEFINE VIEW balance AS SELECT acct, SUM(miles) AS b FROM CHRONICLE \
       mileage GROUP BY acct;\n\
       SHOW CLASSIFY balance;"
  in
  match List.rev results with
  | Analyze.Report r :: _ ->
      check_bool "report tier" true (r.Classify.tier = Classify.Tier_ca1)
  | _ -> Alcotest.fail "expected a report"

let test_guard_extraction_from_sql () =
  (* the SQL front end produces bodies the registry can filter on *)
  let session = setup () in
  let db = Session.db session in
  ignore db;
  ignore
    (Analyze.run_script session
       "DEFINE VIEW nj AS SELECT acct, COUNT(*) AS n FROM CHRONICLE mileage \
        WHERE acct = 1 GROUP BY acct;");
  ignore (Analyze.run_script session "APPEND INTO mileage VALUES (2, 10, 1.0);");
  let reg = Db.registry (Session.db session) in
  check_bool "skipped by guard" true (Registry.skipped reg >= 1)

let suite =
  [
    test "end-to-end script" test_end_to_end_script;
    test "join view classified IM-log(R)" test_join_view_classified_log;
    test "WHERE conjunctions become nested selections" test_where_conjunction_becomes_nested_selects;
    test "WHERE pushdown below the join" test_where_pushdown_below_join;
    test "projection views" test_projection_view;
    test "semantic errors" test_semantic_errors;
    test "SHOW CLASSIFY" test_show_classify;
    test "SQL-defined views are registry-filterable" test_guard_extraction_from_sql;
  ]
