open Relational
open Chronicle_core
open Util
open Fixtures

let test_push_below_keyjoin () =
  let fx = make () in
  let e = Ca.Select (Predicate.("miles" >% vi 10), keyjoin_body fx) in
  (match Rewrite.optimize e with
  | Ca.KeyJoinRel (Ca.Select (_, Ca.Chronicle _), _, _) -> ()
  | e' -> Alcotest.failf "not pushed: %a" Ca.pp e');
  (* a predicate on the relation side must stay above the join *)
  let e2 = Ca.Select (Predicate.("state" =% vs "NJ"), keyjoin_body fx) in
  match Rewrite.optimize e2 with
  | Ca.Select (_, Ca.KeyJoinRel (Ca.Chronicle _, _, _)) -> ()
  | e' -> Alcotest.failf "wrongly pushed: %a" Ca.pp e'

let test_push_below_groupby () =
  let fx = make () in
  let grouped =
    Ca.GroupBySeq
      ([ Seqnum.attr; "acct" ], [ Aggregate.sum "miles" "m" ], Ca.Chronicle fx.mileage)
  in
  (* selection on a grouping attribute commutes *)
  let e = Ca.Select (Predicate.("acct" =% vi 1), grouped) in
  (match Rewrite.optimize e with
  | Ca.GroupBySeq (_, _, Ca.Select (_, Ca.Chronicle _)) -> ()
  | e' -> Alcotest.failf "not pushed: %a" Ca.pp e');
  (* selection on the aggregate output cannot *)
  let e2 = Ca.Select (Predicate.("m" >% vi 100), grouped) in
  match Rewrite.optimize e2 with
  | Ca.Select (_, Ca.GroupBySeq (_, _, Ca.Chronicle _)) -> ()
  | e' -> Alcotest.failf "wrongly pushed: %a" Ca.pp e'

let test_push_through_union_and_projection () =
  let fx = make () in
  let e =
    Ca.Select
      ( Predicate.("acct" =% vi 1),
        Ca.Project
          ( [ Seqnum.attr; "acct" ],
            Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) ) )
  in
  match Rewrite.optimize e with
  | Ca.Project (_, Ca.Union (Ca.Select _, Ca.Select _)) -> ()
  | e' -> Alcotest.failf "unexpected shape: %a" Ca.pp e'

let test_projection_fusion () =
  let fx = make () in
  let e =
    Ca.Project
      ( [ Seqnum.attr; "acct" ],
        Ca.Project ([ Seqnum.attr; "acct"; "miles" ], Ca.Chronicle fx.mileage) )
  in
  (match Rewrite.optimize e with
  | Ca.Project ([ _; _ ], Ca.Chronicle _) -> ()
  | e' -> Alcotest.failf "not fused: %a" Ca.pp e');
  (* identity projection vanishes *)
  let id =
    Ca.Project ([ Seqnum.attr; "acct"; "miles"; "fare" ], Ca.Chronicle fx.mileage)
  in
  match Rewrite.optimize id with
  | Ca.Chronicle _ -> ()
  | e' -> Alcotest.failf "identity kept: %a" Ca.pp e'

let test_sn_pred_pushes_into_seqjoin_left () =
  let fx = make () in
  let left = Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle fx.mileage) in
  let right = Ca.Project ([ Seqnum.attr; "miles" ], Ca.Chronicle fx.bonus) in
  let e = Ca.Select (Predicate.(Seqnum.attr >% vi 5), Ca.SeqJoin (left, right)) in
  match Rewrite.optimize e with
  | Ca.SeqJoin (Ca.Project (_, Ca.Select _), Ca.Project _) -> ()
  | e' -> Alcotest.failf "unexpected shape: %a" Ca.pp e'

let test_guards_through_joins () =
  let fx = make () in
  (* the registry's guard walk descends through key joins, so the
     selection is usable as a guard whether or not it was pushed down *)
  let body = Ca.Select (Predicate.("acct" =% vi 7), keyjoin_body fx) in
  let reg = Registry.create () in
  List.iter (Registry.register reg)
    [
      View.create
        (Sca.define ~name:"u" ~body
           (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ])));
      View.create
        (Sca.define ~name:"o" ~body:(Rewrite.optimize body)
           (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ])));
    ];
  check_int "acct 1: both filtered" 0
    (List.length (Registry.affected reg fx.mileage [ Chron.tag 1 (mile 1 5 1.) ]));
  check_int "acct 7: both maintained" 2
    (List.length (Registry.affected reg fx.mileage [ Chron.tag 2 (mile 7 5 1.) ]))

let test_optimize_helps_guards () =
  let fx = make () in
  (* a selection above a union is NOT extractable as a guard (the walk
     stops at unions); pushing it into the branches makes it one *)
  let body =
    Ca.Select
      ( Predicate.("acct" =% vi 7),
        Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) )
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg)
    [
      View.create
        (Sca.define ~name:"u" ~body
           (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ])));
      View.create
        (Sca.define ~name:"o" ~body:(Rewrite.optimize body)
           (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ])));
    ];
  let affected = Registry.affected reg fx.mileage [ Chron.tag 1 (mile 1 5 1.) ] in
  (* acct 1 does not match acct=7: the optimized view is filtered out,
     the unoptimized one is conservatively maintained *)
  check_int "only the unoptimized view survives" 1 (List.length affected);
  check_string "it is the unoptimized one" "u" (View.name (List.hd affected))

let test_valid_after_optimize () =
  let fx = make () in
  let exprs =
    [
      Ca.Select (Predicate.("miles" >% vi 10), keyjoin_body fx);
      Ca.Select
        ( Predicate.("acct" =% vi 1),
          Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus) );
      Ca.Project ([ Seqnum.attr; "acct" ], select_body fx);
    ]
  in
  List.iter
    (fun e ->
      let e' = Rewrite.optimize e in
      Ca.check e';
      check_bool "schema preserved" true (Schema.equal (Ca.schema_of e) (Ca.schema_of e')))
    exprs

(* random expressions: reuse the shapes of test_delta but with the
   operators the rewriter cares about *)
let gen_expr fx =
  let open QCheck.Gen in
  let base = oneofl [ Ca.Chronicle fx.mileage; Ca.Chronicle fx.bonus ] in
  let pred =
    oneof
      [
        map (fun k -> Predicate.("miles" >% vi k)) (int_bound 300);
        map (fun k -> Predicate.("acct" =% vi (k + 1))) (int_bound 4);
        return (Predicate.("fare" <% vf 20.));
      ]
  in
  let rec body n =
    if n = 0 then base
    else
      frequency
        [
          (2, base);
          (4, map2 (fun p e -> Ca.Select (p, e)) pred (body (n - 1)));
          (2, map2 (fun a b -> Ca.Union (a, b)) (body (n - 1)) (body (n - 1)));
          (2, map2 (fun a b -> Ca.Diff (a, b)) (body (n - 1)) (body (n - 1)));
          (1, map (fun e -> Ca.Project ([ Seqnum.attr; "acct"; "miles"; "fare" ], e)) (body (n - 1)));
        ]
  in
  let top e =
    oneofl
      [
        e;
        Ca.Select
          (Predicate.("acct" =% vi 2), Ca.KeyJoinRel (e, fx.customers, [ ("acct", "cust") ]));
        Ca.GroupBySeq ([ Seqnum.attr; "acct" ], [ Aggregate.sum "miles" "m" ], e);
      ]
  in
  body 3 >>= top

let qcheck_optimize_preserves_semantics =
  let gen =
    QCheck.make
      ~print:(fun (seed, n) -> Printf.sprintf "seed=%d batches=%d" seed n)
      QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 10))
  in
  qtest ~count:150 "optimize preserves value and delta semantics" gen
    (fun (seed, nbatches) ->
      let fx = make () in
      let rand = Random.State.make [| seed |] in
      let expr = QCheck.Gen.generate1 ~rand (gen_expr fx) in
      let expr' = Rewrite.optimize expr in
      Ca.check expr';
      let deltas = ref [] and deltas' = ref [] in
      for i = 1 to nbatches do
        let tuples =
          [ mile (1 + (i mod 5)) (i * 37 mod 300) (float_of_int (i mod 20)) ]
        in
        let chron = if i mod 2 = 0 then fx.mileage else fx.bonus in
        let sn = Chron.append chron tuples in
        let batch = [ (chron, List.map (Chron.tag sn) tuples) ] in
        deltas := !deltas @ Delta.eval expr ~sn ~batch;
        deltas' := !deltas' @ Delta.eval expr' ~sn ~batch
      done;
      let eq a b = List.equal Tuple.equal (sorted_tuples a) (sorted_tuples b) in
      Schema.equal (Ca.schema_of expr) (Ca.schema_of expr')
      && eq (Eval.eval expr) (Eval.eval expr')
      && eq !deltas !deltas'
      && eq !deltas (Eval.eval expr))

let suite =
  [
    test "selection pushes below a key join" test_push_below_keyjoin;
    test "selection commutes with grouping on group attrs" test_push_below_groupby;
    test "selection pushes through union and projection" test_push_through_union_and_projection;
    test "projection fusion and identity removal" test_projection_fusion;
    test "sn predicates push into sequence joins" test_sn_pred_pushes_into_seqjoin_left;
    test "guards extract through joins" test_guards_through_joins;
    test "pushdown enables registry guards" test_optimize_helps_guards;
    test "optimized expressions stay well-formed" test_valid_after_optimize;
    qcheck_optimize_preserves_semantics;
  ]
