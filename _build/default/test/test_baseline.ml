open Relational
open Chronicle_core
open Chronicle_baseline
open Util
open Fixtures

let test_naive_matches_view () =
  let fx = make () in
  let def = balance_def fx in
  let view = View.create def in
  let naive = Naive.create def in
  List.iter
    (fun tuples ->
      let sn = Chron.append fx.mileage tuples in
      let tagged = List.map (Chron.tag sn) tuples in
      View.apply_delta view (Delta.eval (Sca.body def) ~sn ~batch:[ (fx.mileage, tagged) ]);
      Naive.refresh naive)
    [ [ mile 1 100 10. ]; [ mile 2 50 5.; mile 1 7 1. ] ];
  check_tuples "same results" (View.to_list view) (Naive.result naive);
  check_bool "lookup agrees" true
    (Naive.lookup naive [ vi 1 ] = View.lookup view [ vi 1 ]);
  check_int "refreshes" 2 (Naive.refresh_count naive)

let test_naive_scans_grow_with_chronicle () =
  let fx = make () in
  let naive = Naive.create (balance_def fx) in
  let scans_for n =
    for _ = 1 to n do
      ignore (Chron.append fx.mileage [ mile 1 1 1. ])
    done;
    let before = Stats.snapshot () in
    Naive.refresh naive;
    let after = Stats.snapshot () in
    Stats.diff_get before after Stats.Chronicle_scan
  in
  let s1 = scans_for 50 in
  let s2 = scans_for 50 in
  check_bool "scans grow linearly with |C|" true (s2 > s1 && s2 >= 100)

let test_naive_requires_retention () =
  let fx = make ~retention:Chron.Discard () in
  let naive = Naive.create (balance_def fx) in
  ignore (Chron.append fx.mileage [ mile 1 1 1. ]);
  check_raises_any "discarded history" (fun () -> Naive.refresh naive)

let test_delta_ra_on_non_ca () =
  let fx = make () in
  let def =
    Sca.define ~allow_non_ca:true ~name:"pairs"
      ~body:(Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]))
  in
  let b = Delta_ra.create def in
  let feed chron tuples =
    let sn = Chron.append chron tuples in
    Delta_ra.on_batch b ~sn ~batch:[ (chron, List.map (Chron.tag sn) tuples) ]
  in
  feed fx.mileage [ mile 1 10 1. ];
  feed fx.bonus [ mile 9 500 0. ];
  feed fx.mileage [ mile 1 20 2. ];
  (* acct 1 mileage tuples pair with every bonus tuple *)
  check_bool "cross maintained correctly" true
    (Delta_ra.lookup b [ vi 1 ] = Some (tup [ vi 1; vi 2 ]));
  (* and the cost shows: history was scanned *)
  let before = Stats.snapshot () in
  feed fx.mileage [ mile 1 30 3. ];
  let after = Stats.snapshot () in
  check_bool "per-append history scans" true
    (Stats.diff_get before after Stats.Chronicle_scan > 0)

let test_summary_fields_correct_variant () =
  let sf = Summary_fields.create_banking () in
  Summary_fields.process sf (tup [ vi 1; vs "deposit"; vf 100. ]);
  Summary_fields.process sf (tup [ vi 1; vs "withdrawal"; vf (-30.) ]);
  Summary_fields.process sf (tup [ vi 2; vs "deposit"; vf 5. ]);
  check_float "balance 1" 70. (Summary_fields.balance sf ~acct:1);
  check_float "balance 2" 5. (Summary_fields.balance sf ~acct:2);
  check_float "unknown acct" 0. (Summary_fields.balance sf ~acct:9);
  check_int "processed" 3 (Summary_fields.transactions_processed sf);
  check_int "accounts" 2 (Summary_fields.accounts_tracked sf)

let test_chemical_bank_bug_diverges () =
  (* the declarative view stays correct; the buggy procedural code
     double-posts withdrawals (the Feb 18, 1994 incident) *)
  let group = Group.create "g" in
  let txns =
    Chron.create ~group ~name:"txns"
      (Schema.make
         [ ("acct", Value.TInt); ("kind", Value.TStr); ("amount", Value.TFloat) ])
  in
  let def =
    Sca.define ~name:"balance" ~body:(Ca.Chronicle txns)
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "amount" "balance" ]))
  in
  let view = View.create def in
  let ok = Summary_fields.create_banking () in
  let buggy = Summary_fields.create_banking ~bug:`Chemical_bank () in
  let feed tuples =
    let sn = Chron.append txns tuples in
    View.apply_delta view (Delta.eval (Sca.body def) ~sn ~batch:[ (txns, List.map (Chron.tag sn) tuples) ]);
    List.iter (Summary_fields.process ok) tuples;
    List.iter (Summary_fields.process buggy) tuples
  in
  feed [ tup [ vi 1; vs "deposit"; vf 100. ] ];
  feed [ tup [ vi 1; vs "withdrawal"; vf (-40.) ] ];
  let view_balance =
    match View.lookup view [ vi 1 ] with
    | Some row -> Value.to_float (Tuple.get row 1)
    | None -> nan
  in
  check_float "view = correct procedural code" (Summary_fields.balance ok ~acct:1) view_balance;
  check_float "view balance" 60. view_balance;
  check_float "buggy code double-debits" 20. (Summary_fields.balance buggy ~acct:1)

let suite =
  [
    test "naive recomputation matches the view" test_naive_matches_view;
    test "naive scan cost grows with |C|" test_naive_scans_grow_with_chronicle;
    test "naive needs retained history" test_naive_requires_retention;
    test "delta-RA maintains non-CA views (expensively)" test_delta_ra_on_non_ca;
    test "procedural summary fields (correct variant)" test_summary_fields_correct_variant;
    test "Chemical-Bank bug: procedural diverges, view does not" test_chemical_bank_bug_diverges;
  ]
