open Relational
open Chronicle_core
open Util

let test_plan_validation () =
  check_raises_any "non-increasing thresholds" (fun () ->
      ignore (Discount.make [ (10., 0.1); (10., 0.2) ]));
  check_raises_any "decreasing rates" (fun () ->
      ignore (Discount.make [ (10., 0.2); (25., 0.1) ]));
  check_raises_any "rate over 1" (fun () -> ignore (Discount.make [ (10., 1.5) ]))

let test_rate_tiers () =
  let plan = Discount.us_phone_1995 in
  check_float "below first tier" 0. (Discount.rate plan 10.);
  check_float "in first tier" 0.10 (Discount.rate plan 10.01);
  check_float "boundary of second" 0.10 (Discount.rate plan 25.);
  check_float "second tier" 0.20 (Discount.rate plan 25.01);
  check_float "discounted" 80. (Discount.discounted plan 100.)

let call number minutes cost =
  tup [ vi number; vi minutes; vf cost ]

let call_schema =
  Schema.make
    [ ("number", Value.TInt); ("minutes", Value.TInt); ("cost", Value.TFloat) ]

let test_incremental_equals_batch () =
  let group = Group.create "g" in
  let calls = Chron.create ~group ~retention:Chron.Full ~name:"calls" call_schema in
  let def =
    Discount.view_def ~name:"expenses" ~chronicle:calls ~customer_attr:"number"
      ~amount_attr:"cost"
  in
  let view = View.create def in
  let plan = Discount.us_phone_1995 in
  let feed tuples =
    let sn = Chron.append calls tuples in
    let tagged = List.map (Chron.tag sn) tuples in
    View.apply_delta view (Delta.eval (Sca.body def) ~sn ~batch:[ (calls, tagged) ])
  in
  (* customer 1 crosses both thresholds over the month *)
  feed [ call 1 10 8. ];
  check_float "no discount yet" 8.
    (Discount.current_discounted plan view ~customer:(vi 1));
  feed [ call 1 10 8. ];
  (* total 16 > 10: 10% on everything *)
  check_float "10%% tier" (16. *. 0.9)
    (Discount.current_discounted plan view ~customer:(vi 1));
  feed [ call 1 20 15. ];
  (* total 31 > 25: 20% on everything *)
  check_float "20%% tier" (31. *. 0.8)
    (Discount.current_discounted plan view ~customer:(vi 1));
  (* the always-current incremental figure equals the end-of-period batch *)
  check_float "incremental = batch at period end"
    (Discount.batch_discounted plan calls ~customer_attr:"number"
       ~amount_attr:"cost" ~customer:(vi 1))
    (Discount.current_discounted plan view ~customer:(vi 1));
  check_float "unseen customer" 0.
    (Discount.current_discounted plan view ~customer:(vi 99))

let test_incremental_needs_no_history () =
  let group = Group.create "g" in
  (* retention Discard: the batch recomputation is impossible, the
     incremental figure still works *)
  let calls = Chron.create ~group ~name:"calls" call_schema in
  let def =
    Discount.view_def ~name:"expenses" ~chronicle:calls ~customer_attr:"number"
      ~amount_attr:"cost"
  in
  let view = View.create def in
  let plan = Discount.us_phone_1995 in
  let feed tuples =
    let sn = Chron.append calls tuples in
    let tagged = List.map (Chron.tag sn) tuples in
    View.apply_delta view (Delta.eval (Sca.body def) ~sn ~batch:[ (calls, tagged) ])
  in
  feed [ call 1 10 12. ];
  check_float "incremental works without history" (12. *. 0.9)
    (Discount.current_discounted plan view ~customer:(vi 1));
  check_raises_any "batch cannot run" (fun () ->
      ignore
        (Discount.batch_discounted plan calls ~customer_attr:"number"
           ~amount_attr:"cost" ~customer:(vi 1)))

let qcheck_incremental_equals_batch_streams =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 0 40)
        (pair (int_range 1 5) (float_bound_inclusive 20.)))
  in
  qtest "incremental discounted totals = batch, for every customer, any stream"
    gen (fun calls_list ->
      let group = Group.create "g" in
      let calls =
        Chron.create ~group ~retention:Chron.Full ~name:"calls" call_schema
      in
      let def =
        Discount.view_def ~name:"expenses" ~chronicle:calls
          ~customer_attr:"number" ~amount_attr:"cost"
      in
      let view = View.create def in
      let plan = Discount.us_phone_1995 in
      List.iter
        (fun (number, cost) ->
          let tu = call number 1 cost in
          let sn = Chron.append calls [ tu ] in
          View.apply_delta view
            (Delta.eval (Sca.body def) ~sn ~batch:[ (calls, [ Chron.tag sn tu ]) ]))
        calls_list;
      List.for_all
        (fun number ->
          let inc =
            Discount.current_discounted plan view ~customer:(vi number)
          in
          let bat =
            Discount.batch_discounted plan calls ~customer_attr:"number"
              ~amount_attr:"cost" ~customer:(vi number)
          in
          Float.abs (inc -. bat) < 1e-9)
        [ 1; 2; 3; 4; 5 ])

let qcheck_tiers_monotone =
  let gen = QCheck.(pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)) in
  qtest "rate is monotone in the total" gen (fun (a, b) ->
      let plan = Discount.us_phone_1995 in
      let lo = Float.min a b and hi = Float.max a b in
      Discount.rate plan lo <= Discount.rate plan hi)

let suite =
  [
    test "plan validation" test_plan_validation;
    test "tier rates (the paper's US plan)" test_rate_tiers;
    test "incremental = batch at period end (§5.3)" test_incremental_equals_batch;
    test "incremental needs no history" test_incremental_needs_no_history;
    qcheck_incremental_equals_batch_streams;
    qcheck_tiers_monotone;
  ]
