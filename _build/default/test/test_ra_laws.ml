(* Algebraic laws of the relational substrate, checked on random data:
   these underpin both the rewriter's rewrites and the chronicle
   algebra's Δ-rules. *)

open Relational
open Util

let schema = Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ]

let gen_rows = QCheck.(list_of_size (Gen.int_bound 25) (pair (int_bound 6) (int_bound 50)))

let const rows =
  Ra.Const (schema, List.map (fun (a, b) -> tup [ vi a; vi b ]) rows)

let eq_bags e1 e2 =
  List.equal Tuple.equal (sorted_tuples (Ra.eval e1)) (sorted_tuples (Ra.eval e2))

let p1 = Predicate.("a" >% vi 2)
let p2 = Predicate.("b" <% vi 25)

let law_select_commute =
  qtest "σp(σq(R)) = σq(σp(R))" gen_rows (fun rows ->
      let r = const rows in
      eq_bags (Ra.Select (p1, Ra.Select (p2, r))) (Ra.Select (p2, Ra.Select (p1, r))))

let law_select_split =
  qtest "σ(p∧q)(R) = σp(σq(R))" gen_rows (fun rows ->
      let r = const rows in
      eq_bags
        (Ra.Select (Predicate.And (p1, p2), r))
        (Ra.Select (p1, Ra.Select (p2, r))))

let law_select_union =
  qtest "σp(R ∪ S) = σp(R) ∪ σp(S)" (QCheck.pair gen_rows gen_rows)
    (fun (r1, r2) ->
      eq_bags
        (Ra.Select (p1, Ra.Union (const r1, const r2)))
        (Ra.Union (Ra.Select (p1, const r1), Ra.Select (p1, const r2))))

let law_select_diff =
  qtest "σp(R − S) = σp(R) − S" (QCheck.pair gen_rows gen_rows)
    (fun (r1, r2) ->
      eq_bags
        (Ra.Select (p1, Ra.Diff (const r1, const r2)))
        (Ra.Diff (Ra.Select (p1, const r1), const r2)))

let law_union_commutes_as_set =
  qtest "R ∪ S = S ∪ R (set semantics)" (QCheck.pair gen_rows gen_rows)
    (fun (r1, r2) ->
      eq_bags (Ra.Union (const r1, const r2)) (Ra.Union (const r2, const r1)))

let law_union_idempotent =
  qtest "R ∪ R = δ(R)" gen_rows (fun rows ->
      let r = const rows in
      eq_bags (Ra.Union (r, r)) (Ra.Distinct r))

let law_diff_self_empty =
  qtest "R − R = ∅" gen_rows (fun rows ->
      Ra.eval (Ra.Diff (const rows, const rows)) = [])

let law_join_is_filtered_product =
  qtest "R ⋈ S = π(σ(R × S))" (QCheck.pair gen_rows gen_rows) (fun (r1, r2) ->
      let right rows =
        Ra.Const
          ( Schema.make [ ("c", Value.TInt); ("d", Value.TInt) ],
            List.map (fun (a, b) -> tup [ vi a; vi b ]) rows )
      in
      eq_bags
        (Ra.EquiJoin ([ ("a", "c") ], const r1, right r2))
        (Ra.Project
           ( [ "a"; "b"; "d" ],
             Ra.Select (Predicate.attr_eq "a" "c", Ra.Product (const r1, right r2)) )))

let law_groupby_order_insensitive =
  qtest "GROUPBY ignores input order" gen_rows (fun rows ->
      let aggs = [ Aggregate.sum "b" "s"; Aggregate.count_star "n"; Aggregate.min_ "b" "lo" ] in
      let run rows =
        sorted_tuples
          (Ra.eval (Ra.GroupBy ([ "a" ], aggs, const rows)))
      in
      List.equal Tuple.equal (run rows) (run (List.rev rows)))

let law_project_select_commute =
  qtest "πX(σp(R)) = σp(πX(R)) when attrs(p) ⊆ X" gen_rows (fun rows ->
      let r = const rows in
      eq_bags
        (Ra.Project ([ "a" ], Ra.Select (p1, r)))
        (Ra.Select (p1, Ra.Project ([ "a" ], r))))

let suite =
  [
    law_select_commute;
    law_select_split;
    law_select_union;
    law_select_diff;
    law_union_commutes_as_set;
    law_union_idempotent;
    law_diff_self_empty;
    law_join_is_filtered_product;
    law_groupby_order_insensitive;
    law_project_select_commute;
  ]
