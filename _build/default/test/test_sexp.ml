open Relational
open Util

let roundtrip s = Sexp.of_string (Sexp.to_string s)

let test_atoms () =
  check_string "bare" "abc" (Sexp.to_string (Sexp.Atom "abc"));
  check_string "quoted space" "\"a b\"" (Sexp.to_string (Sexp.Atom "a b"));
  check_string "empty" "\"\"" (Sexp.to_string (Sexp.Atom ""));
  check_bool "quote roundtrip" true
    (roundtrip (Sexp.Atom "he said \"hi\"\n\\end") = Sexp.Atom "he said \"hi\"\n\\end")

let test_lists () =
  let s = Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c d" ] ] in
  check_string "print" "(a (b \"c d\"))" (Sexp.to_string s);
  check_bool "roundtrip" true (roundtrip s = s);
  check_bool "pretty roundtrip" true (Sexp.of_string (Sexp.to_string_pretty s) = s)

let test_parse_flexibility () =
  check_bool "whitespace" true
    (Sexp.of_string "  ( a\n\tb )  " = Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]);
  check_bool "comments" true
    (Sexp.of_string "(a ; comment\n b)" = Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]);
  check_int "many" 3 (List.length (Sexp.of_string_many "a (b) c"))

let test_parse_errors () =
  check_raises_any "unterminated list" (fun () -> ignore (Sexp.of_string "(a b"));
  check_raises_any "stray paren" (fun () -> ignore (Sexp.of_string ")"));
  check_raises_any "trailing" (fun () -> ignore (Sexp.of_string "(a) b"));
  check_raises_any "unterminated quote" (fun () -> ignore (Sexp.of_string "\"abc"));
  check_raises_any "empty input" (fun () -> ignore (Sexp.of_string "  "))

let test_helpers () =
  check_int "int" 42 (Sexp.to_int (Sexp.int 42));
  check_float "float exact" 0.1 (Sexp.to_float (Sexp.float 0.1));
  check_bool "bool" true (Sexp.to_bool (Sexp.bool true));
  let r = Sexp.record [ ("a", Sexp.int 1); ("b", Sexp.Atom "x") ] in
  check_int "field" 1 (Sexp.to_int (Sexp.field r "a"));
  check_bool "field_opt none" true (Sexp.field_opt r "zz" = None);
  check_raises_any "missing field" (fun () -> ignore (Sexp.field r "zz"))

let test_value_roundtrip () =
  List.iter
    (fun v -> check_value "value roundtrip" v (Value.of_sexp (roundtrip (Value.to_sexp v))))
    [
      Value.Null; vb true; vi (-42); vf 0.1; vf Float.max_float; vf (-0.0);
      vs "plain"; vs "with (parens) and \"quotes\""; vs "";
    ]

let test_state_roundtrip () =
  List.iter
    (fun func ->
      let st =
        List.fold_left (Aggregate.step func) (Aggregate.init func)
          [ vi 3; vi 8; vi (-1) ]
      in
      let st' = Aggregate.state_of_sexp (roundtrip (Aggregate.sexp_of_state st)) in
      check_value
        (Printf.sprintf "state roundtrip %s" (Aggregate.func_name func))
        (Aggregate.final func st) (Aggregate.final func st');
      (* empty states too *)
      let empty = Aggregate.init func in
      let empty' = Aggregate.state_of_sexp (Aggregate.sexp_of_state empty) in
      check_value "empty state" (Aggregate.final func empty) (Aggregate.final func empty'))
    [ Aggregate.Count; Aggregate.Sum; Aggregate.Min; Aggregate.Max; Aggregate.Avg ]

let qcheck_string_atoms_roundtrip =
  let gen = QCheck.(string_gen (Gen.char_range ' ' '~')) in
  qtest "arbitrary printable atoms roundtrip" gen (fun s ->
      roundtrip (Sexp.Atom s) = Sexp.Atom s)

let suite =
  [
    test "atom quoting" test_atoms;
    test "nested lists" test_lists;
    test "parser flexibility" test_parse_flexibility;
    test "parse errors" test_parse_errors;
    test "typed helpers and records" test_helpers;
    test "value serialization" test_value_roundtrip;
    test "aggregate state serialization" test_state_roundtrip;
    qcheck_string_atoms_roundtrip;
  ]
