open Relational
open Chronicle_core
open Util
open Fixtures

(* Drive [expr] by appending [batches] to the fixture's mileage
   chronicle, collecting the per-batch deltas. *)
let run_deltas fx expr batches =
  List.concat_map
    (fun tuples ->
      let sn = Chron.append fx.mileage tuples in
      let tagged = List.map (Chron.tag sn) tuples in
      Delta.eval expr ~sn ~batch:[ (fx.mileage, tagged) ])
    batches

let batches1 =
  [ [ mile 1 100 10. ]; [ mile 2 200 20.; mile 1 50 5. ]; [ mile 3 0 0. ] ]

let check_delta_equals_recompute name expr_of =
  test name (fun () ->
      let fx = make () in
      let expr = expr_of fx in
      let deltas = run_deltas fx expr batches1 in
      check_tuples "accumulated deltas = full recompute" (Eval.eval expr) deltas)

let test_select_filters () =
  let fx = make () in
  let expr = Ca.Select (Predicate.("miles" >% vi 60), Ca.Chronicle fx.mileage) in
  let deltas = run_deltas fx expr batches1 in
  check_int "only two pass" 2 (List.length deltas)

let test_project_keeps_sn () =
  let fx = make () in
  let expr = Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle fx.mileage) in
  let deltas = run_deltas fx expr batches1 in
  check_tuples "projected"
    [ tup [ vi 1; vi 1 ]; tup [ vi 2; vi 2 ]; tup [ vi 2; vi 1 ]; tup [ vi 3; vi 3 ] ]
    deltas

let test_union_dedups_within_batch () =
  let fx = make () in
  (* both branches select the same base: identical delta tuples must
     merge (set union, per the appendix) *)
  let expr =
    Ca.Union
      ( Ca.Select (Predicate.("miles" >% vi 0), Ca.Chronicle fx.mileage),
        Ca.Select (Predicate.("fare" >% vf 0.), Ca.Chronicle fx.mileage) )
  in
  let sn = Chron.append fx.mileage [ mile 1 100 10. ] in
  let tagged = List.map (Chron.tag sn) [ mile 1 100 10. ] in
  let delta = Delta.eval expr ~sn ~batch:[ (fx.mileage, tagged) ] in
  check_int "one tuple, not two" 1 (List.length delta)

let test_diff_within_batch () =
  let fx = make () in
  let expr =
    Ca.Diff
      ( Ca.Chronicle fx.mileage,
        Ca.Select (Predicate.("miles" >% vi 150), Ca.Chronicle fx.mileage) )
  in
  let deltas = run_deltas fx expr batches1 in
  (* miles > 150 removed: the 200-mile posting disappears *)
  check_int "three of four remain" 3 (List.length deltas);
  check_tuples "matches recompute" (Eval.eval expr) deltas

let test_seqjoin_same_batch_only () =
  let fx = make () in
  let left = Ca.Project ([ Seqnum.attr; "acct" ], Ca.Chronicle fx.mileage) in
  let right = Ca.Project ([ Seqnum.attr; "miles" ], Ca.Chronicle fx.bonus) in
  let expr = Ca.SeqJoin (left, right) in
  (* batch 1: both chronicles; batch 2: mileage only (no join partner) *)
  let sn1 =
    Chron.append_multi fx.group
      [ (fx.mileage, [ mile 1 100 10. ]); (fx.bonus, [ mile 1 500 0. ]) ]
  in
  let d1 =
    Delta.eval expr ~sn:sn1
      ~batch:
        [
          (fx.mileage, [ Chron.tag sn1 (mile 1 100 10.) ]);
          (fx.bonus, [ Chron.tag sn1 (mile 1 500 0.) ]);
        ]
  in
  check_tuples "joined on sn" [ tup [ vi 1; vi 1; vi 500 ] ] d1;
  let sn2 = Chron.append fx.mileage [ mile 2 200 20. ] in
  let d2 =
    Delta.eval expr ~sn:sn2 ~batch:[ (fx.mileage, [ Chron.tag sn2 (mile 2 200 20.) ]) ]
  in
  check_tuples "no partner, empty delta" [] d2;
  (* and the accumulated state matches recompute *)
  check_tuples "recompute agrees" (Eval.eval expr) (d1 @ d2)

let test_groupby_seq () =
  let fx = make () in
  let expr =
    Ca.GroupBySeq
      ( [ Seqnum.attr; "acct" ],
        [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ],
        Ca.Chronicle fx.mileage )
  in
  let sn = Chron.append fx.mileage [ mile 1 100 10.; mile 1 50 5.; mile 2 70 7. ] in
  let tagged = List.map (Chron.tag sn) [ mile 1 100 10.; mile 1 50 5.; mile 2 70 7. ] in
  let delta = Delta.eval expr ~sn ~batch:[ (fx.mileage, tagged) ] in
  check_tuples "fresh groups"
    [ tup [ vi 1; vi 1; vi 150; vi 2 ]; tup [ vi 1; vi 2; vi 70; vi 1 ] ]
    delta

let test_product_rel_uses_current_version () =
  let fx = make () in
  let expr = keyjoin_body fx in
  (* Example 2.2: acct 1 starts in NJ, moves to NY proactively; each
     posting sees the version current at its sequence number *)
  let sn1 = Chron.append fx.mileage [ mile 1 100 10. ] in
  let d1 = Delta.eval expr ~sn:sn1 ~batch:[ (fx.mileage, [ Chron.tag sn1 (mile 1 100 10.) ]) ] in
  check_tuples "sees NJ" [ tup [ vi 1; vi 1; vi 100; vf 10.; vs "NJ" ] ] d1;
  (* the move *)
  let row = List.hd (Relation.lookup_rows fx.customers ~attrs:[ "cust" ] [ vi 1 ]) in
  Relation.update fx.customers row (tup [ vi 1; vs "NY" ]);
  let sn2 = Chron.append fx.mileage [ mile 1 60 6. ] in
  let d2 = Delta.eval expr ~sn:sn2 ~batch:[ (fx.mileage, [ Chron.tag sn2 (mile 1 60 6.) ]) ] in
  check_tuples "sees NY" [ tup [ vi 2; vi 1; vi 60; vf 6.; vs "NY" ] ] d2

let test_keyjoin_probes_not_scans () =
  let fx = make () in
  let expr = keyjoin_body fx in
  let sn = Chron.append fx.mileage [ mile 1 100 10. ] in
  let before = Stats.snapshot () in
  ignore (Delta.eval expr ~sn ~batch:[ (fx.mileage, [ Chron.tag sn (mile 1 100 10.) ]) ]);
  let after = Stats.snapshot () in
  check_int "no chronicle access" 0 (Stats.diff_get before after Stats.Chronicle_scan);
  check_bool "constant probes" true (Stats.diff_get before after Stats.Index_probe <= 2)

let test_ca_never_scans_chronicle () =
  let fx = make () in
  let exprs =
    [
      select_body fx;
      product_body fx;
      Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus);
      Ca.Diff (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus);
      Ca.GroupBySeq
        ([ Seqnum.attr; "acct" ], [ Aggregate.sum "miles" "m" ], Ca.Chronicle fx.mileage);
    ]
  in
  (* warm history so a scan would be visible *)
  for i = 1 to 20 do
    ignore (Chron.append fx.mileage [ mile (i mod 4 + 1) i 1. ])
  done;
  let sn = Chron.append fx.mileage [ mile 1 10 1. ] in
  let batch = [ (fx.mileage, [ Chron.tag sn (mile 1 10 1.) ]) ] in
  let before = Stats.snapshot () in
  List.iter (fun e -> ignore (Delta.eval e ~sn ~batch)) exprs;
  let after = Stats.snapshot () in
  check_int "Theorem 4.2: CA maintenance reads no chronicle history" 0
    (Stats.diff_get before after Stats.Chronicle_scan)

let test_cross_chron_scans_history () =
  let fx = make () in
  let expr =
    Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus)
  in
  ignore (Chron.append fx.bonus [ mile 9 500 0. ]);
  ignore (Chron.append fx.bonus [ mile 9 600 0. ]);
  let sn = Chron.append fx.mileage [ mile 1 100 10. ] in
  let batch = [ (fx.mileage, [ Chron.tag sn (mile 1 100 10.) ]) ] in
  let before = Stats.snapshot () in
  let delta = Delta.eval expr ~sn ~batch in
  let after = Stats.snapshot () in
  check_int "pairs with all old bonus tuples" 2 (List.length delta);
  check_bool "Theorem 4.3: history was scanned" true
    (Stats.diff_get before after Stats.Chronicle_scan > 0);
  (* and the accumulated result still matches recompute *)
  check_tuples "correct, just expensive" (Eval.eval expr)
    (Eval.eval_before expr sn @ delta)

let test_all_fresh () =
  let fx = make () in
  let expr = select_body fx in
  let sn = Chron.append fx.mileage [ mile 1 100 10.; mile 2 1 1. ] in
  let tagged = List.map (Chron.tag sn) [ mile 1 100 10.; mile 2 1 1. ] in
  let delta = Delta.eval expr ~sn ~batch:[ (fx.mileage, tagged) ] in
  check_bool "Thm 4.1: delta carries only fresh sns" true
    (Delta.all_fresh (Ca.schema_of expr) sn delta);
  check_bool "stale detection works" false
    (Delta.all_fresh (Ca.schema_of expr) (sn + 1) delta)

(* ---- randomized equivalence: Δ-accumulation = full recomputation ---- *)

let gen_pred =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Predicate.("miles" >% vi k)) (int_bound 300);
        map (fun k -> Predicate.("acct" =% vi (k + 1))) (int_bound 4);
        map (fun f -> Predicate.("fare" <% vf f)) (float_bound_inclusive 30.);
        map2
          (fun k1 k2 ->
            Predicate.(Or ("acct" =% vi (k1 + 1), "miles" >% vi k2)))
          (int_bound 4) (int_bound 300);
      ])

(* Random CA expressions over the two fixture chronicles, kept
   union-compatible (mileage-shaped) below an optional summarizing top. *)
let gen_expr fx =
  let open QCheck.Gen in
  let base = oneofl [ Ca.Chronicle fx.mileage; Ca.Chronicle fx.bonus ] in
  let rec body n =
    if n = 0 then base
    else
      frequency
        [
          (2, base);
          (3, map2 (fun p e -> Ca.Select (p, e)) gen_pred (body (n - 1)));
          (2, map2 (fun a b -> Ca.Union (a, b)) (body (n - 1)) (body (n - 1)));
          (2, map2 (fun a b -> Ca.Diff (a, b)) (body (n - 1)) (body (n - 1)));
        ]
  in
  let top e =
    oneofl
      [
        e;
        Ca.GroupBySeq
          ([ Seqnum.attr; "acct" ], [ Aggregate.sum "miles" "m" ], e);
        Ca.KeyJoinRel (e, fx.customers, [ ("acct", "cust") ]);
        Ca.Project ([ Seqnum.attr; "acct"; "miles" ], e);
      ]
  in
  body 3 >>= top

let gen_stream =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (pair bool
         (list_size (int_range 1 3)
            (triple (int_range 1 5) (int_bound 300) (float_bound_inclusive 30.)))))

let qcheck_delta_equals_recompute =
  let gen =
    QCheck.make
      ~print:(fun (_, stream) -> Printf.sprintf "<expr> with %d batches" (List.length stream))
      QCheck.Gen.(
        (* fixture must be created inside the property, so generate only
           the recipe here: an int seed to pick the expression *)
        pair (int_bound 1_000_000) gen_stream)
  in
  qtest ~count:150 "random CA expression: Δ-accumulation = recompute" gen
    (fun (seed, stream) ->
      let fx = make () in
      let expr = QCheck.Gen.generate1 ~rand:(Random.State.make [| seed |]) (gen_expr fx) in
      let deltas =
        List.concat_map
          (fun (to_bonus, tuples) ->
            let tuples = List.map (fun (a, m, f) -> mile a m f) tuples in
            let chron = if to_bonus then fx.bonus else fx.mileage in
            let sn = Chron.append chron tuples in
            let tagged = List.map (Chron.tag sn) tuples in
            Delta.eval expr ~sn ~batch:[ (chron, tagged) ])
          stream
      in
      let full = Eval.eval expr in
      List.equal Tuple.equal (sorted_tuples deltas) (sorted_tuples full)
      &&
      (* Theorem 4.1 on every accumulated delta: only fresh sns — checked
         against the final watermark being an upper bound *)
      match Schema.pos_opt (Ca.schema_of expr) Seqnum.attr with
      | None -> true
      | Some pos ->
          List.for_all
            (fun tu -> Seqnum.of_value (Tuple.get tu pos) <= Group.watermark fx.group)
            deltas)

let suite =
  [
    check_delta_equals_recompute "base chronicle: deltas = recompute" (fun fx ->
        Ca.Chronicle fx.mileage);
    check_delta_equals_recompute "selection: deltas = recompute" select_body;
    check_delta_equals_recompute "key join: deltas = recompute" keyjoin_body;
    check_delta_equals_recompute "product: deltas = recompute" product_body;
    test "selection filters the delta" test_select_filters;
    test "projection retains sn" test_project_keeps_sn;
    test "union dedups within a batch" test_union_dedups_within_batch;
    test "difference within a batch" test_diff_within_batch;
    test "sequence join pairs same-sn tuples only" test_seqjoin_same_batch_only;
    test "grouping with sn creates fresh groups" test_groupby_seq;
    test "temporal join sees the current relation version" test_product_rel_uses_current_version;
    test "key join: index probes, no scans" test_keyjoin_probes_not_scans;
    test "CA maintenance never scans the chronicle" test_ca_never_scans_chronicle;
    test "chronicle cross product must scan history" test_cross_chron_scans_history;
    test "Thm 4.1 freshness check" test_all_fresh;
    qcheck_delta_equals_recompute;
  ]
