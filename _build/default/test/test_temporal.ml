open Chronicle_temporal
open Util

let iv a b = Interval.make ~start:a ~stop:b

let test_interval () =
  let i = iv 10 20 in
  check_int "width" 10 (Interval.width i);
  check_bool "contains start" true (Interval.contains i 10);
  check_bool "excludes stop" false (Interval.contains i 20);
  check_bool "before" true (Interval.before i 20);
  check_bool "not before" false (Interval.before i 19);
  check_bool "overlaps" true (Interval.overlaps (iv 0 15) (iv 10 20));
  check_bool "touching do not overlap" false (Interval.overlaps (iv 0 10) (iv 10 20));
  check_raises_any "empty interval" (fun () -> ignore (iv 5 5))

let test_finite_calendar () =
  let cal = Calendar.finite [ iv 10 20; iv 0 5; iv 15 30 ] in
  check_bool "finite" true (Calendar.is_finite cal);
  check_bool "sorted" true (Calendar.interval cal 0 = Some (iv 0 5));
  check_bool "count" true (Calendar.interval_count cal = Some 3);
  check_bool "past end" true (Calendar.interval cal 3 = None);
  Alcotest.check (Alcotest.list Alcotest.int) "covering 17" [ 1; 2 ]
    (Calendar.covering cal 17);
  Alcotest.check (Alcotest.list Alcotest.int) "covering gap" [] (Calendar.covering cal 7);
  check_bool "max concurrent" true (Calendar.max_concurrent cal = Some 2);
  check_raises_any "empty calendar" (fun () -> ignore (Calendar.finite []))

let test_tiling_calendar () =
  let cal = Calendar.tiling ~start:0 ~width:30 in
  check_bool "interval 0" true (Calendar.interval cal 0 = Some (iv 0 30));
  check_bool "interval 2" true (Calendar.interval cal 2 = Some (iv 60 90));
  Alcotest.check (Alcotest.list Alcotest.int) "exactly one covers" [ 1 ]
    (Calendar.covering cal 45);
  Alcotest.check (Alcotest.list Alcotest.int) "boundary belongs to the next" [ 1 ]
    (Calendar.covering cal 30);
  check_bool "one concurrent" true (Calendar.max_concurrent cal = Some 1);
  check_bool "infinite" true (Calendar.interval_count cal = None);
  Alcotest.check (Alcotest.list Alcotest.int) "before start" [] (Calendar.covering cal (-5))

let test_sliding_calendar () =
  let cal = Calendar.sliding ~start:0 ~width:30 in
  (* chronon 100 is covered by intervals starting 71..100 *)
  let cover = Calendar.covering cal 100 in
  check_int "30 covering windows" 30 (List.length cover);
  check_bool "first" true (List.hd cover = 71);
  check_bool "last" true (List.nth cover 29 = 100);
  check_bool "max concurrent 30" true (Calendar.max_concurrent cal = Some 30);
  (* early chronons are covered by fewer windows (none start before 0) *)
  check_int "chronon 5" 6 (List.length (Calendar.covering cal 5))

let test_periodic_overlap () =
  let cal = Calendar.periodic ~start:0 ~width:10 ~stride:4 in
  (* chronon 12: windows starting 4, 8, 12 → indices 1, 2, 3 *)
  Alcotest.check (Alcotest.list Alcotest.int) "covering 12" [ 1; 2; 3 ]
    (Calendar.covering cal 12);
  check_bool "ceil(10/4)=3 concurrent" true (Calendar.max_concurrent cal = Some 3)

(* brute force: scan interval indexes 0..bound and test containment *)
let qcheck_covering_matches_brute_force =
  qtest "Calendar.covering = brute-force scan"
    QCheck.(triple (int_range 1 10) (int_range 1 10) (int_bound 60))
    (fun (width, stride, chronon) ->
      let cal = Calendar.periodic ~start:0 ~width ~stride in
      let brute =
        List.filter
          (fun i ->
            match Calendar.interval cal i with
            | Some iv -> Interval.contains iv chronon
            | None -> false)
          (List.init 100 Fun.id)
      in
      Calendar.covering cal chronon = brute)

let qcheck_max_concurrent_bound =
  qtest "max_concurrent bounds every chronon's cover"
    QCheck.(triple (int_range 1 10) (int_range 1 10) (int_bound 60))
    (fun (width, stride, chronon) ->
      let cal = Calendar.periodic ~start:0 ~width ~stride in
      match Calendar.max_concurrent cal with
      | Some bound -> List.length (Calendar.covering cal chronon) <= bound
      | None -> false)

let suite =
  [
    test "intervals" test_interval;
    test "finite calendars" test_finite_calendar;
    test "tiling (billing-period) calendars" test_tiling_calendar;
    test "sliding (moving-window) calendars" test_sliding_calendar;
    test "overlapping periodic calendars" test_periodic_overlap;
    qcheck_covering_matches_brute_force;
    qcheck_max_concurrent_bound;
  ]
