(* Shared chronicle-model fixtures: a frequent-flyer style schema with a
   mileage chronicle and a customers relation. *)

open Relational
open Chronicle_core
open Util

let mileage_schema =
  Schema.make
    [ ("acct", Value.TInt); ("miles", Value.TInt); ("fare", Value.TFloat) ]

let customer_schema =
  Schema.make [ ("cust", Value.TInt); ("state", Value.TStr) ]

type fixture = {
  group : Group.t;
  mileage : Chron.t;
  bonus : Chron.t; (* second chronicle in the same group *)
  customers : Relation.t;
}

let make ?(retention = Chron.Full) () =
  let group = Group.create "g" in
  let mileage = Chron.create ~group ~retention ~name:"mileage" mileage_schema in
  let bonus = Chron.create ~group ~retention ~name:"bonus" mileage_schema in
  let customers =
    Relation.create ~name:"customers" ~schema:customer_schema ~key:[ "cust" ] ()
  in
  Relation.insert_all customers
    [
      tup [ vi 1; vs "NJ" ];
      tup [ vi 2; vs "NY" ];
      tup [ vi 3; vs "NJ" ];
      tup [ vi 4; vs "CA" ];
    ];
  { group; mileage; bonus; customers }

let mile acct miles fare = tup [ vi acct; vi miles; vf fare ]

(* A canonical CA_1 body: NJ-bonus-eligible postings. *)
let select_body fx = Ca.Select (Predicate.("miles" >% vi 0), Ca.Chronicle fx.mileage)

(* A canonical CA_join body: postings joined with the customer record
   current at the posting's sequence number. *)
let keyjoin_body fx =
  Ca.KeyJoinRel (Ca.Chronicle fx.mileage, fx.customers, [ ("acct", "cust") ])

(* A canonical full-CA body: cross product with the relation. *)
let product_body fx = Ca.ProductRel (Ca.Chronicle fx.mileage, fx.customers)

(* The balance view of Example 2.1: SUM of miles per account. *)
let balance_def fx =
  Sca.define ~name:"balance" ~body:(Ca.Chronicle fx.mileage)
    (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))
