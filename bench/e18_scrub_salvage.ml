(* E18 — operational: the price of self-healing storage.

   (a) Scrub cost vs journal length: the read-only verification pass
       re-CRCs every journal record (and checkpoint generation), so it
       is linear in stored bytes and touches no database state.
   (b) Salvage cost vs damage position: salvage replays the surviving
       prefix sequentially and per-record transactionally (the price of
       its exact-prefix guarantee), so its cost tracks where the damage
       sits, not the journal length — plus one quarantine write.
   (c) Checkpoint rotation overhead: a CRC-headed generation
       (keep-checkpoints >= 2) vs the bare legacy file — one extra CRC
       over the snapshot payload and a prune pass.

   Machine-readable evidence lands in BENCH_E18.json. *)

open Relational
open Chronicle_core
open Chronicle_durability

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]

let mk_db () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "total"; Aggregate.count_star "n" ] ))));
  db

let one_row i =
  Tuple.make [ Value.Int (i mod 256); Value.Int ((i * 7 mod 100) + 1) ]

let build ?segment_bytes n =
  let storage = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ?segment_bytes ~storage db in
  for i = 1 to n do
    ignore (Db.append db "mileage" [ one_row i ])
  done;
  Durable.detach d;
  storage

let clone (src : Storage.t) =
  let dst = Storage.mem () in
  List.iter
    (fun name ->
      match src.Storage.read name with
      | Some bytes -> dst.Storage.write name bytes
      | None -> ())
    (src.Storage.list ());
  dst

let stored_bytes (st : Storage.t) =
  List.fold_left
    (fun acc n -> acc + Option.value ~default:0 (st.Storage.size n))
    0
    (st.Storage.list ())

let scrub_cost json =
  let rows = ref [] in
  List.iter
    (fun (n, segment_bytes, label) ->
      let storage = build ?segment_bytes n in
      let bytes = stored_bytes storage in
      let secs =
        Measure.median_time ~runs:5 (fun () -> ignore (Scrub.run storage))
      in
      rows :=
        [
          label;
          Measure.i n;
          Measure.i bytes;
          Measure.f2 (secs *. 1e3);
          Measure.f2 (secs /. float_of_int n *. 1e6);
        ]
        :: !rows;
      json :=
        Measure.J_obj
          [
            ("op", Measure.J_str "scrub");
            ("layout", Measure.J_str label);
            ("n", Measure.J_int n);
            ("stored_bytes", Measure.J_int bytes);
            ("millis", Measure.J_float (secs *. 1e3));
            ( "micros_per_record",
              Measure.J_float (secs /. float_of_int n *. 1e6) );
          ]
        :: !json)
    [
      (1_000, None, "single file");
      (10_000, None, "single file");
      (10_000, Some 65_536, "64 KiB segments");
    ];
  Measure.print_table ~title:"E18a  scrub cost vs journal length"
    ~header:[ "layout"; "records"; "stored B"; "scrub ms"; "us/record" ]
    (List.rev !rows)

let salvage_cost json =
  let n = 10_000 in
  let pristine = build n in
  let journal_len =
    Option.value ~default:0 (pristine.Storage.size Durable.journal_file)
  in
  let rows = ref [] in
  List.iter
    (fun frac ->
      let damaged = clone pristine in
      Fault.flip_bit damaged ~name:Durable.journal_file
        ~byte:(10 + int_of_float (float_of_int (journal_len - 10) *. frac))
        ~bit:0;
      (* time salvage on a fresh clone per run: salvage mutates *)
      let replayed = ref 0 and quarantined = ref 0 in
      let secs =
        Measure.median_time ~runs:3 (fun () ->
            let _, report =
              Durable.recover ~mode:Durable.Salvage ~storage:(clone damaged)
                ()
            in
            replayed := report.Durable.replayed;
            quarantined := report.Durable.quarantined)
      in
      rows :=
        [
          Printf.sprintf "%.2f" frac;
          Measure.i !replayed;
          Measure.i !quarantined;
          Measure.f2 (secs *. 1e3);
        ]
        :: !rows;
      json :=
        Measure.J_obj
          [
            ("op", Measure.J_str "salvage");
            ("n", Measure.J_int n);
            ("damage_fraction", Measure.J_float frac);
            ("replayed", Measure.J_int !replayed);
            ("quarantined", Measure.J_int !quarantined);
            ("millis", Measure.J_float (secs *. 1e3));
          ]
        :: !json)
    [ 0.25; 0.5; 0.9 ];
  (* baseline: strict recovery of the pristine journal (parallel-window
     replay, no per-record transactions) *)
  let secs =
    Measure.median_time ~runs:3 (fun () ->
        ignore (Durable.recover ~storage:(clone pristine) ()))
  in
  rows := [ "clean (strict)"; Measure.i n; Measure.i 0; Measure.f2 (secs *. 1e3) ] :: !rows;
  json :=
    Measure.J_obj
      [
        ("op", Measure.J_str "strict-baseline");
        ("n", Measure.J_int n);
        ("millis", Measure.J_float (secs *. 1e3));
      ]
    :: !json;
  Measure.print_table
    ~title:"E18b  salvage recovery vs damage position (10k-record journal)"
    ~header:[ "damage at"; "replayed"; "quarantined"; "recover ms" ]
    (List.rev !rows)

let checkpoint_cost json =
  let rows = ref [] in
  List.iter
    (fun (keep, label) ->
      let storage = Storage.mem () in
      let db = mk_db () in
      let d = Durable.attach ~keep_checkpoints:keep ~storage db in
      for i = 1 to 5_000 do
        ignore (Db.append db "mileage" [ one_row i ])
      done;
      let secs =
        Measure.median_time ~runs:5 (fun () -> Durable.checkpoint d)
      in
      Durable.detach d;
      rows := [ label; Measure.f2 (secs *. 1e3) ] :: !rows;
      json :=
        Measure.J_obj
          [
            ("op", Measure.J_str "checkpoint");
            ("keep_checkpoints", Measure.J_int keep);
            ("millis", Measure.J_float (secs *. 1e3));
          ]
        :: !json)
    [ (1, "legacy (keep=1)"); (3, "generations (keep=3)") ];
  Measure.print_table ~title:"E18c  checkpoint cost: legacy vs generations"
    ~header:[ "layout"; "checkpoint ms" ]
    (List.rev !rows)

let run () =
  Measure.section "E18: self-healing storage — scrub, salvage, generations"
    "Scrub re-CRCs every stored record read-only (linear in bytes); \
     salvage pays a sequential per-record replay for its exact-prefix \
     guarantee; checkpoint generations add one CRC over the snapshot \
     payload plus pruning.";
  let json = ref [] in
  scrub_cost json;
  salvage_cost json;
  checkpoint_cost json;
  Measure.write_json ~file:"BENCH_E18.json" (List.rev !json)
