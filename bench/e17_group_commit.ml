(* E17 — operational: group commit.

   The staging queue (Chronicle_durability.Group) drains many staged
   appends into ONE journal record and ONE sync.  Under sync=always on
   a real disk the fsync dominates the append path, so amortizing it
   over a group of N is the entire throughput story: appends/sec should
   scale with N until the fold work (which is per-append either way)
   takes over.  Under sync=never the journal write is cheap and group
   commit is expected to be roughly neutral — the point of the sweep is
   that batch=1 stays within noise of the plain per-append path, which
   is also what the differential tests pin down byte-for-byte.

   All figures are single-threaded (jobs=1): group commit amortizes
   *synchronous durability*, not fold CPU — the parallel fold story is
   E14's.  Machine-readable evidence lands in BENCH_E17.json. *)

open Relational
open Chronicle_core
open Chronicle_durability
module Staging = Chronicle_durability.Group

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]

let mk_db () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "total"; Aggregate.count_star "n" ] ))));
  db

let one_row i =
  Tuple.make [ Value.Int (i mod 256); Value.Int ((i * 7 mod 100) + 1) ]

let with_temp_dir f =
  let dir = Filename.temp_file "chronicle_e17" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let batches = [ 1; 8; 64; 256 ]

(* Amortized cost of one staged append at [batch]: stage rows one at a
   time; every [batch]-th stage drains the queue as one group (one
   journal record, one sync).  The trailing partial group is flushed
   inside the timed region so every staged append's commit is paid. *)
let staged_run ~sync ~batch ~times dir =
  let db = mk_db () in
  let d = Durable.attach ~sync ~storage:(Storage.disk ~dir) db in
  let st = Staging.create ~batch db in
  let r =
    Measure.per_op ~times (fun i ->
        ignore (Staging.stage st [ ("mileage", [ one_row i ]) ]);
        if i = times - 1 then Staging.flush st)
  in
  Durable.detach d;
  r

let run () =
  Measure.section "E17: group commit — batched appends, one sync per group"
    "Staged appends drain into one journal record + one sync per group \
     of N.  Under sync=always the fsync dominates, so appends/sec \
     scales with N; under sync=never grouping is near-neutral.  \
     Single-threaded (jobs=1): this amortizes synchronous durability, \
     not fold CPU.";
  let json = ref [] in
  let rows = ref [] in
  let baselines = Hashtbl.create 4 in
  List.iter
    (fun (sync, label, times) ->
      List.iter
        (fun batch ->
          let r =
            with_temp_dir (fun dir -> staged_run ~sync ~batch ~times dir)
          in
          let per_sec = 1e6 /. r.Measure.micros in
          if batch = 1 then Hashtbl.replace baselines label per_sec;
          let speedup = per_sec /. Hashtbl.find baselines label in
          rows :=
            [
              label;
              Measure.i batch;
              Measure.f2 r.Measure.micros;
              Measure.f1 per_sec;
              Measure.f2 speedup ^ "x";
            ]
            :: !rows;
          json :=
            Measure.J_obj
              [
                ("op", Measure.J_str ("staged-append/" ^ label));
                ("batch", Measure.J_int batch);
                ("n", Measure.J_int times);
                ("micros_per_append", Measure.J_float r.Measure.micros);
                ("appends_per_sec", Measure.J_float per_sec);
                ("speedup_vs_batch1", Measure.J_float speedup);
              ]
            :: !json)
        batches)
    [
      (Journal.Sync_always, "disk,sync=always", 512);
      (Journal.Sync_every 64, "disk,sync=every:64", 1024);
      (Journal.Sync_never, "disk,sync=never", 2048);
    ];
  Measure.print_table
    ~title:"E17  appends/sec vs group size (disk journal, jobs=1)"
    ~header:[ "storage"; "batch"; "us/append"; "appends/s"; "vs batch=1" ]
    (List.rev !rows);
  Measure.write_json ~file:"BENCH_E17.json" (List.rev !json)
