(* E19 — skew-aware join-view maintenance: heavy-light partitioning of
   join-input keys on the append path.

   A join-shaped view (CA_join: the txn chronicle keyed against the
   accounts relation) folds every appended tuple through
   {!Relational.Skew.matches}.  CA_M's constant-fanout guarantee
   (Definition 4.2) makes the light path an indexed point probe into
   the relation's key index — asymptotically O(1), but against a hash
   table that grows with the opposite-side cardinality |R|, so every
   probe pays the cache pressure of the whole index.  Under a skewed
   (Zipf 1.1) key stream the partition promotes the hot keys to
   materialized partial-join runs held in a <= 64-entry table: their
   matches are served without touching the relation index at all
   (index probes per append drop to the light-key residue — the
   machine-independent contrast), and the per-append cost stays flat
   as |R| grows.  Under a uniform stream no key ever reaches the
   adaptive bar, and the partition must cost (almost) nothing: the
   recorded uniform_overhead_ratio pins the <5% regression budget.

   Both modes are asserted byte-identical on every operating point
   before anything is recorded (the partition is mechanism, not
   policy).  Wall-clock numbers carry the usual 1-core container
   caveat (see EXPERIMENTS.md); the counter contrast — tuple_read per
   append flat vs growing with |R| — is machine-independent.

   Machine-readable evidence lands in BENCH_E19.json (recorded copy:
   bench/results/e19_skew_join.json). *)

open Relational
open Chronicle_core
open Chronicle_workload

(* Each append call carries a batch: single-tuple appends sit at the
   resolution floor of the wall clock (~1 us), so per-call timings
   quantize.  16 tuples per call puts one call in the tens of
   microseconds while keeping the per-key promote dynamics intact. *)
let n_appends = 4_000
let batch = 16
let reps = 13
let sizes = [ 10_000; 100_000; 400_000 ]

(* threshold 0 = adaptive default (partitioning on); a bar no count can
   reach = partitioning off, i.e. the sequential lazy fold *)
let modes = [ ("partitioned", 0); ("off", max_int) ]

let mk_db ~threshold ~accounts =
  let db = Db.create ~heavy_threshold:threshold () in
  ignore (Db.add_chronicle db ~name:"txn" Banking.txn_schema);
  let acc =
    Db.add_relation db ~name:"accounts" ~schema:Banking.account_schema
      ~key:[ "acct" ] ()
  in
  let rng = Rng.create 42 in
  List.iter (Versioned.insert acc) (Banking.accounts rng ~n:accounts);
  let body =
    Ca.KeyJoinRel
      ( Ca.Chronicle (Db.chronicle db "txn"),
        Versioned.relation acc,
        [ ("acct", "acct") ] )
  in
  ignore
    (Db.define_view db
       (Sca.define ~name:"by_branch" ~body
          (Sca.Group_agg ([ "branch" ], [ Aggregate.sum "amount" "total" ]))));
  db

(* Append the stream one batch at a time, timing each append call. *)
let run_stream db stream =
  let times = Array.make (List.length stream) 0. in
  List.iteri
    (fun i rows ->
      let t0 = Measure.now () in
      ignore (Db.append db "txn" rows);
      times.(i) <- (Measure.now () -. t0) *. 1e6)
    stream;
  times

let percentile a p =
  let s = Array.copy a in
  Array.sort Float.compare s;
  let n = Array.length s in
  s.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run () =
  (* per-append p99 on the default minor heap is dominated by ~30 us
     collection slices that hit both modes identically; a larger minor
     heap makes them rare enough that the tail reflects maintenance
     cost rather than allocator cadence *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
  Measure.section "E19: skew-aware join-view maintenance (heavy-light)"
    "Per-append delta cost of a join view as the opposite-side relation \
     grows, under Zipf(1.1) and uniform key streams, with heavy-light \
     partitioning on (adaptive) and off (lazy fold).  Skewed streams \
     promote hot keys to materialized runs: p99 stays flat as |R| \
     grows.  Uniform streams never promote: the partition's counting \
     overhead is the recorded uniform_overhead_ratio.";
  Measure.note "hardware: %d recommended domain(s)"
    (Domain.recommended_domain_count ());
  let json = ref [] in
  let table = ref [] in
  List.iter
    (fun (stream_name, s) ->
      List.iter
        (fun accounts ->
          let zipf = Zipf.create ~n:accounts ~s in
          let stream =
            let rng = Rng.create 11 in
            List.init n_appends (fun _ ->
                List.init batch (fun _ -> Banking.txn rng zipf))
          in
          let means = Hashtbl.create 2 in
          let contents = Hashtbl.create 2 in
          (* one persistent database per mode; repetitions interleave
             the modes so slow container drift hits both equally, and
             min-of-statistic across reps keeps one GC storm or
             scheduler hiccup from deciding a tail number *)
          let dbs =
            List.map
              (fun (mode, threshold) -> (mode, mk_db ~threshold ~accounts))
              modes
          in
          let rep_data = Hashtbl.create 2 in
          for _rep = 1 to reps do
            List.iter
              (fun (mode, db) ->
                Gc.full_major ();
                let before = Stats.snapshot () in
                let times = run_stream db stream in
                let after = Stats.snapshot () in
                Hashtbl.replace contents mode (Db.view_contents db "by_branch");
                Hashtbl.replace rep_data mode
                  ((times, before, after)
                  :: Option.value ~default:[] (Hashtbl.find_opt rep_data mode)))
              dbs
          done;
          List.iter
            (fun (mode, _threshold) ->
              let reps = Hashtbl.find rep_data mode in
              let best p =
                List.fold_left
                  (fun acc (times, _, _) -> Float.min acc (percentile times p))
                  infinity reps
              in
              (* counters from the first (cold-start) repetition — they
                 are deterministic, later reps inherit the heavy set *)
              let _, before, after = List.nth reps (List.length reps - 1) in
              (* per-repetition stream means, trimmed of the top 1% of
                 appends: sums are far stabler than quantized
                 percentiles on a 1-core container, but a single
                 scheduler preemption (~1 ms against ~15 us appends)
                 otherwise owns a rep's mean *)
              let rep_means =
                List.map
                  (fun (times, _, _) ->
                    let s = Array.copy times in
                    Array.sort Float.compare s;
                    let keep = Array.length s * 99 / 100 in
                    let sum = ref 0. in
                    for i = 0 to keep - 1 do
                      sum := !sum +. s.(i)
                    done;
                    !sum /. float_of_int keep)
                  reps
              in
              let mean = List.fold_left Float.min infinity rep_means in
              Hashtbl.replace means mode rep_means;
              let per_append c =
                float_of_int (Stats.diff_get before after c)
                /. float_of_int n_appends
              in
              let p50 = best 0.50 and p99 = best 0.99 in
              json :=
                Measure.J_obj
                  [
                    ("stream", Measure.J_str stream_name);
                    ("accounts", Measure.J_int accounts);
                    ("mode", Measure.J_str mode);
                    ("appends", Measure.J_int n_appends);
                    ("rows_per_append", Measure.J_int batch);
                    ("mean_micros_per_append", Measure.J_float mean);
                    ("p50_micros_per_append", Measure.J_float p50);
                    ("p99_micros_per_append", Measure.J_float p99);
                    ("index_probe_per_append", Measure.J_float (per_append Stats.Index_probe));
                    ( "heavy_promote_total",
                      Measure.J_int
                        (Stats.diff_get before after Stats.Heavy_promote) );
                    ( "heavy_demote_total",
                      Measure.J_int
                        (Stats.diff_get before after Stats.Heavy_demote) );
                    ( "heavy_probe_total",
                      Measure.J_int
                        (Stats.diff_get before after Stats.Heavy_probe) );
                    ( "light_fold_total",
                      Measure.J_int
                        (Stats.diff_get before after Stats.Light_fold) );
                  ]
                :: !json;
              table :=
                [
                  stream_name;
                  string_of_int accounts;
                  mode;
                  Measure.f1 p50;
                  Measure.f1 p99;
                  Measure.f1 (per_append Stats.Index_probe);
                  string_of_int (Stats.diff_get before after Stats.Heavy_probe);
                ]
                :: !table)
            modes;
          (* the partition is mechanism: both modes must agree exactly *)
          let on = Hashtbl.find contents "partitioned"
          and off = Hashtbl.find contents "off" in
          if not (List.equal Tuple.equal on off) then
            failwith
              (Printf.sprintf "E19: partitioned view diverged (%s, |R|=%d)"
                 stream_name accounts);
          if stream_name = "uniform" then begin
            (* the two modes' repetitions interleave, so pairing rep i
               with rep i cancels container drift; the median of the
               paired ratios is the recorded regression *)
            let ratios =
              List.map2 ( /. )
                (Hashtbl.find means "partitioned")
                (Hashtbl.find means "off")
            in
            let sorted = List.sort Float.compare ratios in
            let ratio = List.nth sorted (List.length sorted / 2) in
            Measure.note "uniform |R|=%d: mean overhead ratio %.3f" accounts
              ratio;
            json :=
              Measure.J_obj
                [
                  ("stream", Measure.J_str "uniform");
                  ("accounts", Measure.J_int accounts);
                  ("uniform_overhead_ratio", Measure.J_float ratio);
                ]
              :: !json
          end)
        sizes)
    [ ("zipf-1.1", 1.1); ("uniform", 0.) ];
  Measure.print_table
    ~title:
      (Printf.sprintf
         "per-append delta cost of the join view (%d appends x %d rows per \
          point)"
         n_appends batch)
    ~header:
      [ "stream"; "|R|"; "mode"; "p50 us"; "p99 us"; "idx_probe"; "hvy_probe" ]
    (List.rev !table);
  Measure.write_json ~file:"BENCH_E19.json" (List.rev !json)
