(* E2 — Theorem 4.2: the Δ-computation cost of the three chronicle-
   algebra tiers.

     CA     : O((u|R|)^j log|R|)  — grows polynomially with |R| per join
     CA_join: O(u^j log|R|)      — index probes only, ~log|R|
     CA_1   : O(u^j)             — no dependence on |R| at all

   and all three are independent of |C| (the chronicles here retain
   nothing, so any dependence would crash). *)

open Relational
open Chronicle_core

let chron_schema = Schema.make [ ("k", Value.TInt); ("x", Value.TInt) ]

let make_rel name prefix size =
  let schema =
    Schema.make [ (prefix ^ "k", Value.TInt); (prefix ^ "v", Value.TInt) ]
  in
  let rel = Relation.create ~name ~schema ~key:[ prefix ^ "k" ] () in
  for i = 1 to size do
    ignore (Relation.insert rel (Tuple.make [ Value.Int i; Value.Int (i * 7) ]))
  done;
  (* probe through a B+-tree index so the log|R| factor of Theorem 4.2
     is visible in the node-visit counter (the key's default hash index
     would hide it behind expected-O(1) probes) *)
  Relation.create_index rel Index.Ordered [ prefix ^ "k" ];
  rel

let delta_cost expr chron ~appends =
  let size = Chron.total_appended chron in
  (* compile once, run per append — the same steady-state path a
     registered view takes through its plan cache *)
  let plan = Delta.compile expr in
  Measure.per_op ~times:appends (fun i ->
      (* x stays within 1..97 so key joins always match exactly one row
         of every relation size in the sweep *)
      let tu = Tuple.make [ Value.Int (i mod 17); Value.Int ((size + i) mod 97 + 1) ] in
      let sn = Chron.append chron [ tu ] in
      ignore (Delta.run plan ~sn ~batch:[ (chron, [ Chron.tag sn tu ]) ]))

(* JSON evidence records accumulated by both sweeps and written at the
   end of [run] (committed copies live under bench/results/). *)
let json_rows : Measure.json list ref = ref []

let record ~op ~n cost =
  json_rows := Measure.json_of_per_op ~op ~n cost :: !json_rows

let sweep_r () =
  let rows = ref [] in
  List.iter
    (fun rsize ->
      let group = Group.create "g" in
      let chron = Chron.create ~group ~name:"c" chron_schema in
      let r1 = make_rel "r1" "a" rsize in
      let r2 = make_rel "r2" "b" rsize in
      (* CA with j=1 and j=2 products *)
      let ca1j = Ca.ProductRel (Ca.Chronicle chron, r1) in
      let ca2j = Ca.ProductRel (Ca.ProductRel (Ca.Chronicle chron, r1), r2) in
      (* CA_join with j=1 and j=2 key joins *)
      let caj1 = Ca.KeyJoinRel (Ca.Chronicle chron, r1, [ ("x", "ak") ]) in
      let caj2 = Ca.KeyJoinRel (caj1, r2, [ ("x", "bk") ]) in
      (* CA_1: selection only *)
      let cab = Ca.Select (Predicate.("k" >% Value.Int 2), Ca.Chronicle chron) in
      (* keep the product runs small; their cost is |R|^j per append *)
      let appends_for_products = if rsize > 1000 then 5 else 50 in
      let c_prod1 = delta_cost ca1j chron ~appends:appends_for_products in
      let c_prod2 =
        if rsize > 3000 then None
        else Some (delta_cost ca2j chron ~appends:(max 2 (appends_for_products / 2)))
      in
      let c_key1 = delta_cost caj1 chron ~appends:300 in
      let c_key2 = delta_cost caj2 chron ~appends:300 in
      let c_base = delta_cost cab chron ~appends:300 in
      record ~op:"ca_product_j1" ~n:rsize c_prod1;
      Option.iter (record ~op:"ca_product_j2" ~n:rsize) c_prod2;
      record ~op:"ca_join_j1" ~n:rsize c_key1;
      record ~op:"ca_join_j2" ~n:rsize c_key2;
      record ~op:"ca_1_select" ~n:rsize c_base;
      rows :=
        [
          Measure.i rsize;
          Measure.f1 c_prod1.Measure.micros;
          (match c_prod2 with
          | Some c -> Measure.f1 c.Measure.micros
          | None -> "(skipped)");
          Measure.f2 c_key1.Measure.micros;
          Measure.f1 (Measure.counter c_key1 Stats.Index_node_visit);
          Measure.f2 c_key2.Measure.micros;
          Measure.f3 c_base.Measure.micros;
        ]
        :: !rows)
    [ 100; 1_000; 10_000; 100_000 ];
  Measure.print_table ~title:"E2a  Δ-computation cost vs |R| (per append)"
    ~header:
      [ "|R|"; "CA j=1 us"; "CA j=2 us"; "CAjoin j=1 us"; "node visits";
        "CAjoin j=2 us"; "CA_1 us" ]
    (List.rev !rows)

let sweep_u () =
  (* CA_1 cost as the number of unions grows: O(u^j) with j=0 means the
     delta size (and cost) grows linearly in the number of branches *)
  let rows = ref [] in
  List.iter
    (fun u ->
      let group = Group.create "g" in
      let chron = Chron.create ~group ~name:"c" chron_schema in
      let branch i =
        Ca.Select (Predicate.("x" >=% Value.Int (-i)), Ca.Chronicle chron)
      in
      let expr = ref (branch 0) in
      for i = 1 to u do
        expr := Ca.Union (!expr, branch i)
      done;
      let cost = delta_cost !expr chron ~appends:300 in
      record ~op:"ca_1_union_sweep" ~n:u cost;
      rows :=
        [ Measure.i u; Measure.f2 cost.Measure.micros ] :: !rows)
    [ 0; 1; 2; 4; 8 ];
  Measure.print_table ~title:"E2b  CA_1 Δ cost vs number of unions u"
    ~header:[ "u"; "us/append" ] (List.rev !rows)

let run () =
  Measure.section "E2: Theorem 4.2 — Δ-computation cost by language tier"
    "Chronicles retain nothing here: every number below is achieved with \
     zero access to chronicle history, so nothing can depend on |C|.  CA \
     products scale with |R|^j; CA_join scales with log|R| (see the node- \
     visit column); CA_1 ignores |R| entirely.";
  json_rows := [];
  sweep_r ();
  sweep_u ();
  Measure.write_json ~file:"BENCH_delta_cost.json" (List.rev !json_rows)
