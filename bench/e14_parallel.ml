(* E14 — multicore Δ-maintenance: batch throughput vs domain count.

   The transaction path folds the Δ of each affected view
   independently (no view reads another view — the §5.2 independence
   that makes "identify affected views" worthwhile also makes them
   embarrassingly parallel).  This experiment measures appends/second
   through the full path with V unguarded SCA views — every append
   affects all of them — as the maintenance degree (--jobs) grows, and
   the cost of the initial materialization of a view over retained
   history (the {!Plan.compile_parallel} scan/aggregate kernel).

   Expectation: throughput scales with the domain count up to the
   machine's cores, and jobs=1 matches the historical sequential path
   (it *is* the historical path: no pool, no task handoff).  On a
   single-core container the parallel degrees only add scheduling
   overhead — the recorded JSON carries the core count so a reader can
   tell a scaling failure from a hardware floor.

   Machine-readable evidence lands in BENCH_E14.json. *)

open Relational
open Chronicle_core

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]
let accounts = 64

let row i =
  Tuple.make [ Value.Int (i mod accounts); Value.Int ((i * 7 mod 100) + 1) ]

let batch_rows = 8
let batch sn = List.init batch_rows (fun i -> row ((sn * batch_rows) + i))

let mk_db ~jobs ~views =
  let db = Db.create ~jobs () in
  let c = Db.add_chronicle db ~name:"c" schema in
  for v = 0 to views - 1 do
    ignore
      (Db.define_view db
         (Sca.define
            ~name:(Printf.sprintf "v%03d" v)
            ~body:(Ca.Chronicle c)
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))))
  done;
  db

let degrees () =
  let limit =
    if !Measure.jobs_limit = 0 then Domain.recommended_domain_count ()
    else !Measure.jobs_limit
  in
  List.filter (fun j -> j <= max 1 limit) [ 1; 2; 4; 8 ]

let run () =
  Measure.section "E14: parallel view maintenance"
    "Appends/second with V persistent views, every append affecting all \
     of them, as the Δ-folds are partitioned across domains; plus the \
     parallel initial-materialization kernel over retained history.";
  let cores = Domain.recommended_domain_count () in
  let hw_note =
    Printf.sprintf
      "%d recommended domain(s); %s, %d-bit; speedups above 1 require \
       hardware_cores > 1"
      cores Sys.os_type Sys.word_size
  in
  Measure.note "hardware: %s" hw_note;
  let json =
    ref
      [
        Measure.J_obj
          [
            ("hardware_cores", Measure.J_int cores);
            ("hardware_note", Measure.J_str hw_note);
          ];
      ]
  in

  (* (a) batch-maintenance throughput *)
  let batches = 64 in
  let rows =
    List.concat_map
      (fun views ->
        let base = ref 0. in
        List.map
          (fun jobs ->
            let db = mk_db ~jobs ~views in
            ignore (Db.append db "c" (batch 0)) (* warm plans and stores *);
            let sn = ref 1 in
            let secs =
              Measure.median_time ~runs:5 (fun () ->
                  for _ = 1 to batches do
                    ignore (Db.append db "c" (batch !sn));
                    incr sn
                  done)
            in
            let per_sec = float_of_int batches /. secs in
            if jobs = 1 then base := per_sec;
            let speedup = per_sec /. !base in
            json :=
              Measure.J_obj
                [
                  ("op", Measure.J_str "append");
                  ("views", Measure.J_int views);
                  ("jobs", Measure.J_int jobs);
                  ("batches_per_sec", Measure.J_float per_sec);
                  ("speedup_vs_1", Measure.J_float speedup);
                ]
              :: !json;
            [
              string_of_int views;
              string_of_int jobs;
              Measure.f1 per_sec;
              Measure.f2 speedup;
            ])
          (degrees ()))
      [ 64; 256; 512 ]
  in
  Measure.print_table ~title:"batch maintenance (64-row groups, 8-row batches)"
    ~header:[ "views"; "jobs"; "batches/s"; "speedup" ]
    rows;

  (* (b) initial materialization over retained history *)
  let history = 20_000 in
  let rows =
    List.map
      (fun jobs ->
        let db = Db.create ~jobs () in
        let c =
          Db.add_chronicle db ~retention:Chron.Full ~name:"c" schema
        in
        for i = 0 to (history / batch_rows) - 1 do
          ignore (Db.append db "c" (batch i))
        done;
        let n = ref 0 in
        let secs =
          Measure.median_time ~runs:5 (fun () ->
              incr n;
              ignore
                (Db.define_view db
                   (Sca.define
                      ~name:(Printf.sprintf "m%d" !n)
                      ~body:(Ca.Chronicle c)
                      (Sca.Group_agg
                         ( [ "acct" ],
                           [
                             Aggregate.sum "miles" "m";
                             Aggregate.count_star "n";
                           ] )))))
        in
        json :=
          Measure.J_obj
            [
              ("op", Measure.J_str "materialize");
              ("history", Measure.J_int history);
              ("jobs", Measure.J_int jobs);
              ("millis", Measure.J_float (secs *. 1e3));
            ]
          :: !json;
        [ string_of_int history; string_of_int jobs; Measure.f2 (secs *. 1e3) ])
      (degrees ())
  in
  Measure.print_table
    ~title:"initial materialization from retained history"
    ~header:[ "history rows"; "jobs"; "ms" ]
    rows;
  Measure.write_json ~file:"BENCH_E14.json" (List.rev !json)
