(* Benchmark harness: one experiment per claim of the paper (the paper
   has no numbered tables/figures; see DESIGN.md section 3 for the
   claim-to-experiment index and EXPERIMENTS.md for recorded results).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe E3 E4      -- run a subset
     dune exec bench/main.exe micro      -- bechamel micro-benchmarks *)

let experiments =
  [
    ("E1", E1_relational_algebra.run);
    ("E2", E2_delta_cost.run);
    ("E3", E3_view_maintenance.run);
    ("E4", E4_chronicle_independence.run);
    ("E5", E5_moving_window.run);
    ("E6", E6_affected_views.run);
    ("E7", E7_batch_incremental.run);
    ("E8", E8_throughput.run);
    ("E9", E9_theorems.run);
    ("E10", E10_event_detection.run);
    ("E11", E11_rewriter.run);
    ("E12", E12_snapshot.run);
    ("E13", E13_durability.run);
    ("E14", E14_parallel.run);
    ("E15", E15_recovery.run);
    ("E16", E16_indexed_ranged.run);
    ("E17", E17_group_commit.run);
    ("E18", E18_scrub_salvage.run);
    ("E19", E19_skew_join.run);
    ("E20", E20_server.run);
    ("E21", E21_retract.run);
    ("micro", Micro.run);
  ]

let () =
  (* strip a leading `--jobs N` (cap on the parallelism degrees E14 and
     E15 sweep; 0 = the recommended domain count) *)
  let args =
    match Array.to_list Sys.argv with
    | exe :: "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            Measure.jobs_limit := n;
            exe :: rest
        | _ ->
            prerr_endline "--jobs expects a non-negative integer";
            exit 2)
    | argv -> argv
  in
  let requested =
    match args with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  print_newline ()
