(* E8 — end-to-end transaction throughput (the "stringent performance
   requirements" motivation).

   Appends/second through the full database path (chronicle + registry
   + Δ-maintenance) as the number of persistent views grows, against
   the hand-written procedural summary-field code.  The declarative
   engine is within the same order of magnitude as the hand-written
   loop — while also being statically classified, filterable, and
   immune to the Chemical-Bank class of bugs. *)

open Relational
open Chronicle_core
open Chronicle_baseline
open Chronicle_workload

let accounts = 2_000

let view_defs db k =
  let chron = Ca.Chronicle (Db.chronicle db "txns") in
  let defs =
    [
      ("balance", Sca.Group_agg ([ "acct" ], [ Aggregate.sum "amount" "balance" ]));
      ("txn_count", Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]));
      ("largest", Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "amount" "max_dep" ]));
      ("smallest", Sca.Group_agg ([ "acct" ], [ Aggregate.min_ "amount" "min_w" ]));
      ("by_kind", Sca.Group_agg ([ "kind" ], [ Aggregate.count_star "n" ]));
      ("avg_amt", Sca.Group_agg ([ "acct" ], [ Aggregate.avg "amount" "avg" ]));
      ("kinds_seen", Sca.Project_out [ "kind" ]);
      ("accts_seen", Sca.Project_out [ "acct" ]);
    ]
  in
  List.filteri (fun i _ -> i < k) (defs @ defs)
  |> List.mapi (fun i (name, summ) ->
         Sca.define ~name:(Printf.sprintf "%s_%d" name i) ~body:chron summ)

let run () =
  Measure.section "E8: end-to-end throughput"
    "Appends/second through the full transaction path with k persistent \
     views, vs the hand-written procedural summary-field code (which \
     maintains exactly one balance field).";
  let rng0 = Rng.create 17 in
  let zipf = Zipf.create ~n:accounts ~s:1.0 in
  let appends = 20_000 in
  let runs = 3 in
  let rows = ref [] in
  let json = ref [] in
  (* procedural baseline *)
  let sf = Summary_fields.create_banking () in
  let rng = Rng.split rng0 in
  let secs =
    Measure.median_time ~runs (fun () ->
        for _ = 1 to appends do
          Summary_fields.process sf (Banking.txn rng zipf)
        done)
  in
  rows :=
    [
      "procedural (1 field)";
      Measure.i (int_of_float (float_of_int appends /. secs));
      "-";
    ]
    :: !rows;
  json :=
    Measure.(
      J_obj
        [
          ("op", J_str "procedural_baseline");
          ("n", J_int 0);
          ("appends_per_sec", J_float (float_of_int appends /. secs));
          ("micros_per_op", J_float (secs /. float_of_int appends *. 1e6));
        ])
    :: !json;
  (* declarative engine with k views *)
  List.iter
    (fun k ->
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"txns" Banking.txn_schema);
      List.iter (fun def -> ignore (Db.define_view db def)) (view_defs db k);
      let rng = Rng.split rng0 in
      (* counters captured across every timed run: per-append deltas
         witness the steady state (plan_cache_hit = k per append,
         plan/predicate/projector compiles = 0) *)
      let before = Stats.snapshot () in
      let secs =
        Measure.median_time ~runs (fun () ->
            for _ = 1 to appends do
              ignore (Db.append db "txns" [ Banking.txn rng zipf ])
            done)
      in
      let after = Stats.snapshot () in
      let per_append =
        let total = float_of_int (runs * appends) in
        List.map
          (fun (c, d) -> (c, float_of_int d /. total))
          (Stats.diff before after)
      in
      rows :=
        [
          Printf.sprintf "chronicle db, %d views" k;
          Measure.i (int_of_float (float_of_int appends /. secs));
          Measure.f2 (secs /. float_of_int appends *. 1e6);
        ]
        :: !rows;
      json :=
        Measure.(
          J_obj
            [
              ("op", J_str "chronicle_db_append");
              ("n", J_int k);
              ("appends_per_sec", J_float (float_of_int appends /. secs));
              ("micros_per_op", J_float (secs /. float_of_int appends *. 1e6));
              ("counters", json_counters per_append);
            ])
        :: !json)
    [ 1; 4; 8; 16 ];
  Measure.print_table ~title:"E8  sustained append throughput"
    ~header:[ "configuration"; "appends/sec"; "us/append" ]
    (List.rev !rows);
  Measure.write_json ~file:"BENCH_throughput.json" (List.rev !json)
