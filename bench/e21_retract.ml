(* E21 — ℤ-weighted deltas: the cost of retraction, and the cost of
   carrying weights on the append path.

   Three questions, three phases over one Full-retention catalog:

   1. Append overhead.  The weight machinery generalizes every compiled
      Δ-artifact from tuples to (tuple, weight) — but the append path
      is the weight = +1 fast path and must not pay for it.  Phase A
      times the plain append stream and asserts the differential pin
      from the inside: retract_apply, weight_cancel and
      aggregate_reprobe all stay exactly zero across the whole stream
      (the structural witness that no retraction code ran).  The
      recorded append_micros is the regression-tracking number; the
      acceptance budget against the pre-weights baseline is 2%.

   2. Invertible retraction.  COUNT/SUM-class aggregates invert in
      O(1) per group, but a retraction CALL is transactional: it pays
      an O(|C| + |V|) coarse undo snapshot (all-or-nothing rollback)
      and an occurrence-resolution pass regardless of how many rows it
      claims.  Phase B separates the two costs: single-row calls
      (snapshot-dominated — same order as the full-recompute baseline)
      vs one batched call claiming every victim, which amortizes the
      snapshot across its rows (~4x cheaper per row here; the residual
      still carries a 1/batch share of the O(|C|) snapshot, so the
      per-row cost does not collapse to the append path).  The
      recompute baseline (drop + redefine from retained history)
      divided by the batched per-row cost is the recorded
      incremental-vs-recompute gap.

   3. Extremum re-probe.  A MIN/MAX group that loses its extremum is
      recomputed from retained history — bounded, but not O(1).
      Phase C retracts rows that are (worst case) always the current
      maximum and records the per-retract cost and the
      aggregate_reprobe count, showing the documented IM-R^k demotion
      without disturbing the invertible numbers.

   Wall-clock numbers carry the usual 1-core container caveat
   (EXPERIMENTS.md); the counter contrasts are machine-independent.
   Machine-readable evidence lands in BENCH_E21.json (recorded copy:
   bench/results/e21_retract.json). *)

open Relational
open Chronicle_core

let schema =
  Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]

let row acct miles = Tuple.make [ Value.Int acct; Value.Int miles ]

let n_accts = 64
let batch = 8
let reps = 7
let sizes = [ 2_000; 8_000; 20_000 ]
let retracts = 300

let mk_db ~extremes () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  if extremes then
    ignore
      (Db.define_view db
         (Sca.define ~name:"extremes"
            ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
            (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))));
  db

(* a fixed arithmetic stream: deterministic, all rows distinct per
   account (miles strictly increasing), so phase C can always retract
   the current maximum *)
let fill db n =
  let i = ref 0 in
  while !i < n do
    let rows =
      List.init (min batch (n - !i)) (fun k ->
          let j = !i + k in
          row (j mod n_accts) (1 + j))
    in
    ignore (Db.append db "mileage" rows);
    i := !i + List.length rows
  done

let min_over l = List.fold_left Float.min infinity l

let run () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
  Measure.section "E21: retraction cost under ℤ-weighted deltas"
    "Per-retract cost of single-row retractions against a linear \
     SUM/COUNT view (O(1) inverse) and a MAX view (bounded re-probe) \
     as retained history grows, against the full-recompute baseline \
     (drop + redefine from history).  The append phase pins the \
     weight = +1 fast path: the retraction counters stay exactly zero \
     on a pure-append stream.";
  let json = ref [] in
  let table = ref [] in
  List.iter
    (fun n ->
      (* ---- phase A: the append stream itself (weights carried, never
         paid) ---- *)
      let append_means =
        List.init reps (fun _ ->
            let db = mk_db ~extremes:false () in
            Gc.full_major ();
            let before = Stats.snapshot () in
            let t0 = Measure.now () in
            fill db n;
            let elapsed = Measure.now () -. t0 in
            let after = Stats.snapshot () in
            List.iter
              (fun c ->
                if Stats.diff_get before after c <> 0 then
                  failwith
                    (Printf.sprintf "E21: %s moved on a pure-append stream"
                       (Stats.counter_name c)))
              Stats.[ Retract_apply; Weight_cancel; Aggregate_reprobe ];
            elapsed *. 1e6 /. float_of_int n)
      in
      let append_us = min_over append_means in
      (* ---- phase B: invertible retraction vs full recompute ---- *)
      let retract_means =
        List.init reps (fun _ ->
            let db = mk_db ~extremes:false () in
            fill db n;
            Gc.full_major ();
            let t0 = Measure.now () in
            for j = 0 to retracts - 1 do
              (* spread claims across the history: row j of account
                 j mod n_accts, always present exactly once *)
              ignore (Db.retract db "mileage" [ row (j mod n_accts) (1 + j) ])
            done;
            (Measure.now () -. t0) *. 1e6 /. float_of_int retracts)
      in
      let retract_us = min_over retract_means in
      let batched_means =
        List.init reps (fun _ ->
            let db = mk_db ~extremes:false () in
            fill db n;
            let victims = List.init retracts (fun j -> row (j mod n_accts) (1 + j)) in
            Gc.full_major ();
            let t0 = Measure.now () in
            ignore (Db.retract db "mileage" victims);
            (Measure.now () -. t0) *. 1e6 /. float_of_int retracts)
      in
      let batched_us = min_over batched_means in
      let recompute_means =
        List.init reps (fun _ ->
            let db = mk_db ~extremes:false () in
            fill db n;
            Gc.full_major ();
            let t0 = Measure.now () in
            Db.drop_view db "balance";
            ignore
              (Db.define_view db
                 (Sca.define ~name:"balance"
                    ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
                    (Sca.Group_agg
                       ( [ "acct" ],
                         [
                           Aggregate.sum "miles" "balance";
                           Aggregate.count_star "n";
                         ] ))));
            (Measure.now () -. t0) *. 1e6)
      in
      let recompute_us = min_over recompute_means in
      (* ---- phase C: always retract the current maximum ---- *)
      let reprobes = ref 0 in
      let reprobe_means =
        List.init reps (fun _ ->
            let db = mk_db ~extremes:true () in
            fill db n;
            Gc.full_major ();
            let before = Stats.snapshot () in
            let t0 = Measure.now () in
            for j = 0 to retracts - 1 do
              (* the stream's miles are increasing, so the latest
                 surviving row of the account is its maximum *)
              let k = n - 1 - j in
              ignore (Db.retract db "mileage" [ row (k mod n_accts) (1 + k) ])
            done;
            let elapsed = Measure.now () -. t0 in
            let after = Stats.snapshot () in
            reprobes := Stats.diff_get before after Stats.Aggregate_reprobe;
            elapsed *. 1e6 /. float_of_int retracts)
      in
      let reprobe_us = min_over reprobe_means in
      let gap = recompute_us /. batched_us in
      Measure.note
        "|C|=%d: append %.1f us, retract %.1f us/call, batched %.1f us/row, \
         recompute %.0f us (gap %.0fx), max-reprobe %.1f us (%d re-probes)"
        n append_us retract_us batched_us recompute_us gap reprobe_us !reprobes;
      json :=
        Measure.J_obj
          [
            ("history", Measure.J_int n);
            ("accounts", Measure.J_int n_accts);
            ("retracts", Measure.J_int retracts);
            ("append_micros_per_row", Measure.J_float append_us);
            ("retract_micros_single_call", Measure.J_float retract_us);
            ("retract_micros_batched_row", Measure.J_float batched_us);
            ("recompute_micros", Measure.J_float recompute_us);
            ("recompute_over_batched_retract", Measure.J_float gap);
            ("retract_micros_max_reprobe", Measure.J_float reprobe_us);
            ("aggregate_reprobes", Measure.J_int !reprobes);
            ("pure_append_counters", Measure.J_str "all-zero");
          ]
        :: !json;
      table :=
        [
          string_of_int n;
          Measure.f1 append_us;
          Measure.f1 retract_us;
          Measure.f1 batched_us;
          Measure.f1 recompute_us;
          Measure.f1 gap;
          Measure.f1 reprobe_us;
          string_of_int !reprobes;
        ]
        :: !table)
    sizes;
  Measure.print_table
    ~title:
      (Printf.sprintf
         "single-row retraction vs full recompute (%d retracts per point)"
         retracts)
    ~header:
      [
        "|C|"; "append us"; "call us"; "batched us"; "recompute us"; "gap x";
        "max-reprobe us"; "reprobes";
      ]
    (List.rev !table);
  Measure.write_json ~file:"BENCH_E21.json" (List.rev !json)
