(* Measurement kit for the experiment harness: wall-clock timing plus
   the engine's operation counters, and fixed-width table printing. *)

open Relational

let now () = Unix.gettimeofday ()

(* Cap on the maintenance-parallelism degrees the experiments sweep
   (set by `bench/main.exe --jobs N`; 0 = the recommended domain
   count).  Experiments that don't involve parallelism ignore it. *)
let jobs_limit = ref 4

(* Median wall-clock time of [runs] executions of [f], in seconds. *)
let median_time ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = now () in
        f ();
        now () -. t0)
  in
  let sorted = List.sort Float.compare samples in
  List.nth sorted (runs / 2)

type per_op = {
  micros : float; (* wall micro-seconds per operation *)
  counters : (Stats.counter * float) list; (* per-operation counter deltas *)
}

(* Run [op] [times] times; report wall time and counters per call. *)
let per_op ?(times = 200) op =
  let before = Stats.snapshot () in
  let t0 = now () in
  for i = 0 to times - 1 do
    op i
  done;
  let elapsed = now () -. t0 in
  let after = Stats.snapshot () in
  let n = float_of_int times in
  {
    micros = elapsed /. n *. 1e6;
    counters =
      List.map (fun (c, d) -> (c, float_of_int d /. n)) (Stats.diff before after);
  }

let counter r c =
  match List.assoc_opt c r.counters with Some v -> v | None -> 0.

(* ---- table printing ---- *)

let rule width = String.make width '-'

let print_table ~title ~header rows =
  let columns = List.length header in
  let widths = Array.make columns 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  let total = Array.fold_left ( + ) 0 widths + (3 * (columns - 1)) in
  Printf.printf "\n%s\n%s\n" title (rule (max total (String.length title)));
  print_endline (String.concat " | " (List.mapi pad header));
  print_endline (rule total);
  List.iter (fun row -> print_endline (String.concat " | " (List.mapi pad row))) rows;
  flush stdout

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let i v = string_of_int v

(* ---- machine-readable evidence ----

   Hand-rolled JSON (no external deps).  Experiments append rows and
   flush them to a BENCH_*.json file in the working directory; recorded
   evidence is committed under bench/results/. *)

type json =
  | J_str of string
  | J_int of int
  | J_float of float
  | J_obj of (string * json) list
  | J_arr of json list

let rec emit_json buf = function
  | J_str s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_float v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" v)
      else Buffer.add_string buf (Printf.sprintf "%.6g" v)
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_json buf (J_str k);
          Buffer.add_string buf ": ";
          emit_json buf v)
        fields;
      Buffer.add_char buf '}'
  | J_arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_json buf v)
        items;
      Buffer.add_char buf ']'

let json_counters counters =
  J_obj
    (List.map (fun (c, v) -> (Stats.counter_name c, J_float v)) counters)

(* One JSON record per measured operating point: the operation name, the
   swept size [n], wall micro-seconds per op, and per-op counter deltas. *)
let json_of_per_op ~op ~n r =
  J_obj
    [
      ("op", J_str op);
      ("n", J_int n);
      ("micros_per_op", J_float r.micros);
      ("counters", json_counters r.counters);
    ]

let write_json ~file rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      emit_json buf row)
    rows;
  Buffer.add_string buf "\n]\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d records)\n%!" file (List.length rows)

let section title doc =
  Printf.printf "\n==== %s ====\n%s\n" title doc;
  flush stdout

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt
