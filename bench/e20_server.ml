(* E20 — operational: the wire protocol.

   A forked chronicle server (one process, one shared Db, Unix.select
   event loop) serves N pipelined client connections appending to one
   chronicle with a maintained group-aggregate view.  Two request
   shapes for the same append:

     - STMT:   the ℒ source text "APPEND INTO mileage VALUES (..);" —
               the server lexes, parses and analyzes every request;
     - APPEND: the binary fast path — chronicle name + pre-parsed typed
               values, straight into the session's staging queue.

   The difference isolates the per-append lexer/parser/analyzer cost,
   which the fast path deletes.  Everything is one core: the server
   process and all client connections share it (the harness box has a
   single hardware thread, as in E13–E19), so appends/sec here is a
   protocol-overhead comparison, not a scaling curve — client counts
   beyond 1 mostly measure that multiplexing N connections through one
   select loop does not collapse.  Query latency is the round-trip of
   a SHOW VIEW over 256 groups.  Machine-readable evidence lands in
   BENCH_E20.json. *)

open Relational
open Chronicle_core
open Chronicle_net

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]

let mk_db () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "total"; Aggregate.count_star "n" ] ))));
  db

let one_row i = [ Value.Int (i mod 256); Value.Int ((i * 7 mod 100) + 1) ]

let sock_path () =
  let f = Filename.temp_file "chronicle_e20" ".sock" in
  Sys.remove f;
  f

let start_server path =
  match Unix.fork () with
  | 0 ->
      let server = Server.create (mk_db ()) in
      let lfd = Server.listen_unix path in
      Server.serve server lfd;
      Stdlib.exit 0
  | pid -> pid

let stop_server path pid =
  let c = Client.connect_unix path in
  Client.send c Protocol.Shutdown;
  (match Client.recv c with _ -> () | exception End_of_file -> ());
  Client.close c;
  ignore (Unix.waitpid [] pid);
  try Sys.remove path with Sys_error _ -> ()

(* [times] appends spread round-robin over [clients] pipelined
   connections: write every request, then collect every ack.  The
   server reads unconditionally (responses buffer in its event loop),
   so the all-writes-then-all-reads shape cannot deadlock.  Wall
   micro-seconds per committed append, acks verified. *)
let append_sweep ~mode ~clients ~times path =
  let conns = Array.init clients (fun _ -> Client.connect_unix path) in
  let t0 = Measure.now () in
  for i = 0 to times - 1 do
    let c = conns.(i mod clients) in
    match mode with
    | `Stmt ->
        Client.send c
          (Protocol.Stmt
             (Printf.sprintf "APPEND INTO mileage VALUES (%d, %d);"
                (i mod 256)
                ((i * 7 mod 100) + 1)))
    | `Append ->
        Client.send c
          (Protocol.Append { chronicle = "mileage"; rows = [ one_row i ] })
  done;
  Array.iteri
    (fun k c ->
      let expect =
        (times / clients) + if k < times mod clients then 1 else 0
      in
      for _ = 1 to expect do
        match Client.recv c with
        | Protocol.Ack _ | Protocol.Result _ -> ()
        | Protocol.Err { message; _ } -> failwith ("E20: " ^ message)
        | _ -> failwith "E20: unexpected response to an append"
      done)
    conns;
  let elapsed = Measure.now () -. t0 in
  Array.iter Client.close conns;
  elapsed /. float_of_int times *. 1e6

(* Round-trip latency of a query: send SHOW VIEW, wait for its rendered
   rows, one at a time on one connection. *)
let query_latency ~times path =
  let c = Client.connect_unix path in
  let t0 = Measure.now () in
  for _ = 1 to times do
    Client.send c (Protocol.Stmt "SHOW VIEW balance;");
    match Client.recv c with
    | Protocol.Result _ -> ()
    | _ -> failwith "E20: unexpected response to a query"
  done;
  let elapsed = Measure.now () -. t0 in
  Client.close c;
  elapsed /. float_of_int times *. 1e6

let clients_sweep = [ 1; 4; 16 ]
let times = 2048

let run () =
  Measure.section
    "E20: wire protocol — appends/sec and query latency over the server"
    "A forked server, N pipelined client connections, one shared Db \
     with a maintained group-aggregate view.  STMT sends ℒ text (the \
     server parses every append); APPEND sends pre-parsed typed values \
     (the fast path skips the lexer/parser).  One core for everything, \
     so this isolates protocol overhead, not parallel scaling.";
  let path = sock_path () in
  let pid = start_server path in
  let json = ref [] and rows = ref [] in
  let stmt_baseline = Hashtbl.create 4 in
  List.iter
    (fun (mode, label) ->
      List.iter
        (fun clients ->
          let micros = append_sweep ~mode ~clients ~times path in
          let per_sec = 1e6 /. micros in
          (match mode with
          | `Stmt -> Hashtbl.replace stmt_baseline clients micros
          | `Append -> ());
          let vs_stmt = Hashtbl.find stmt_baseline clients /. micros in
          rows :=
            [
              label;
              Measure.i clients;
              Measure.f2 micros;
              Measure.f1 per_sec;
              Measure.f2 vs_stmt ^ "x";
            ]
            :: !rows;
          json :=
            Measure.J_obj
              [
                ("op", Measure.J_str ("server-append/" ^ label));
                ("clients", Measure.J_int clients);
                ("n", Measure.J_int times);
                ("micros_per_append", Measure.J_float micros);
                ("appends_per_sec", Measure.J_float per_sec);
                ("speedup_vs_stmt", Measure.J_float vs_stmt);
              ]
            :: !json)
        clients_sweep)
    [ (`Stmt, "stmt"); (`Append, "append") ];
  let qmicros = query_latency ~times:256 path in
  stop_server path pid;
  Measure.print_table
    ~title:"E20  appends/sec over the wire (pipelined, 1 core)"
    ~header:[ "opcode"; "clients"; "us/append"; "appends/s"; "vs stmt" ]
    (List.rev !rows);
  Measure.note "SHOW VIEW balance (256 groups) round-trip: %.1f us" qmicros;
  json :=
    Measure.J_obj
      [
        ("op", Measure.J_str "server-query/stmt");
        ("clients", Measure.J_int 1);
        ("n", Measure.J_int 256);
        ("micros_per_roundtrip", Measure.J_float qmicros);
      ]
    :: !json;
  Measure.write_json ~file:"BENCH_E20.json" (List.rev !json)
