(* E15 — parallel recovery: journal replay wall-clock vs domain count.

   Recovery replays runs of consecutive append records as windows: the
   records are recorded sequentially (watermarks, retention rings and
   the affected-view computation are order-sensitive and cheap), then
   each affected view's Δ-folds are chained in record order and the
   per-view chains — the expensive part — are handed to the domain
   pool ({!Db.replay_appends}).  The available parallelism is therefore
   the number of *independent view chains* in a window, not the number
   of records:

   - a "disjoint" journal (each batch touches its own view) splits into
     as many chains as views, and replay scales with the domain count;
   - a "shared" journal (every batch touches the same single view) is
     one chain — the sequential critical path — and extra domains buy
     nothing.

   Both journals carry the same number of (view × record) fold pairs,
   so the contrast isolates scheduling, not work.  jobs = 1 runs the
   pool inline and is the reference; recovered state is byte-identical
   at every degree (asserted here, and property-tested in
   test_parallel.ml).  On a single-core container every degree > 1 only
   adds overhead — BENCH_E15.json carries the core count so a flat
   curve can be told from a hardware floor.

   Machine-readable evidence lands in BENCH_E15.json. *)

open Relational
open Chronicle_core
open Chronicle_durability

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]
let accounts = 64
let batch_rows = 8

let row i =
  Tuple.make [ Value.Int (i mod accounts); Value.Int ((i * 7 mod 100) + 1) ]

let batch sn = List.init batch_rows (fun i -> row ((sn * batch_rows) + i))

let agg_view name c =
  Sca.define ~name ~body:(Ca.Chronicle c)
    (Sca.Group_agg
       ([ "acct" ], [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ]))

(* Both scenarios record the same number of append records and the same
   total number of view-folds; they differ only in how those folds
   distribute over per-view chains. *)
let chains = 8

let build_disjoint db =
  (* [chains] chronicles, one view each; appends round-robin *)
  let cs =
    List.init chains (fun k ->
        let name = Printf.sprintf "c%d" k in
        let c = Db.add_chronicle db ~name schema in
        ignore (Db.define_view db (agg_view (Printf.sprintf "v%d" k) c));
        name)
  in
  fun sn -> ignore (Db.append db (List.nth cs (sn mod chains)) (batch sn))

let build_shared db =
  (* one chronicle, one view: every record extends the same chain *)
  let c = Db.add_chronicle db ~name:"c" schema in
  ignore (Db.define_view db (agg_view "v" c));
  fun sn -> ignore (Db.append db "c" (batch sn))

let degrees () =
  let limit =
    if !Measure.jobs_limit = 0 then Domain.recommended_domain_count ()
    else !Measure.jobs_limit
  in
  List.filter (fun j -> j <= max 1 limit) [ 1; 2; 4; 8 ]

let run () =
  Measure.section "E15: parallel recovery"
    "Journal-replay wall-clock as the recovery degree grows, for a \
     journal whose batches touch disjoint views (as many fold chains \
     as views) vs one whose batches all touch the same view (a single \
     sequential chain).  Same record count and same total fold count \
     in both.";
  let cores = Domain.recommended_domain_count () in
  let hw_note =
    Printf.sprintf
      "%d recommended domain(s); %s, %d-bit; speedups above 1 require \
       hardware_cores > 1"
      cores Sys.os_type Sys.word_size
  in
  Measure.note "hardware: %s" hw_note;
  let json =
    ref
      [
        Measure.J_obj
          [
            ("hardware_cores", Measure.J_int cores);
            ("hardware_note", Measure.J_str hw_note);
          ];
      ]
  in
  let records = 384 in
  let rows =
    List.concat_map
      (fun (scenario, build) ->
        (* build the journal once: attach writes the initial (empty)
           checkpoint, then every append lands as one journal record —
           recovery replays all of them and leaves storage unchanged,
           so the same storage serves every measured degree *)
        let storage = Storage.mem () in
        let db = Db.create () in
        let append = build db in
        let _d = Durable.attach ~sync:Journal.Sync_never ~storage db in
        for sn = 1 to records do
          append sn
        done;
        let reference = Snapshot.save db in
        let base = ref 0. in
        List.map
          (fun jobs ->
            let check = ref "" in
            let secs =
              Measure.median_time ~runs:5 (fun () ->
                  let d, _report = Durable.recover ~jobs ~storage () in
                  check := Snapshot.save (Durable.db d))
            in
            if not (String.equal !check reference) then
              failwith
                (Printf.sprintf "E15: recovered state diverged (%s, jobs=%d)"
                   scenario jobs);
            let ms = secs *. 1e3 in
            if jobs = 1 then base := ms;
            let speedup = !base /. ms in
            json :=
              Measure.J_obj
                [
                  ("op", Measure.J_str "recover");
                  ("scenario", Measure.J_str scenario);
                  ("records", Measure.J_int records);
                  ("jobs", Measure.J_int jobs);
                  ("millis", Measure.J_float ms);
                  ("speedup_vs_1", Measure.J_float speedup);
                ]
              :: !json;
            [
              scenario;
              string_of_int records;
              string_of_int jobs;
              Measure.f2 ms;
              Measure.f2 speedup;
            ])
          (degrees ()))
      [ ("disjoint", build_disjoint); ("shared", build_shared) ]
  in
  Measure.print_table
    ~title:
      (Printf.sprintf "recovery replay (%d-row batches, %d views max)"
         batch_rows chains)
    ~header:[ "journal"; "records"; "jobs"; "ms"; "speedup" ]
    rows;
  Measure.write_json ~file:"BENCH_E15.json" (List.rev !json)
