(* E16 — ranged index-probe pushdown: scan vs probe on the parallel
   plan path.

   PR 3/4 gave {!Plan.compile_parallel} range-split scans; this PR
   teaches the ranged path the sequential plan's select-pushdown: an
   equality selection over a base relation with a covering index is
   answered per range by one {e bounded} index probe
   ({!Relation.lookup_bounded} / {!Index.find_bounded}) restricted to
   the range's row-id interval, instead of scanning the slice.

   The experiment runs the same selective query (1% of the rows match)
   against two byte-identical relations — one carrying a non-unique
   hash index on the selection attribute, one without — across the
   parallelism degrees.  The contrast the recorded JSON pins is
   machine-independent: the probe path reads exactly the matching
   tuples per execution ([tuple_read] ≈ hits) and fires [index_scan]
   once per range, while the scan path reads every live row; the
   wall-clock ratio then follows the counter ratio.  Both paths return
   byte-identical rows (asserted here, and differentially in
   test/test_plan.ml and test/test_parallel.ml).

   Machine-readable evidence lands in BENCH_E16.json (recorded copy:
   bench/results/e16_indexed_ranged.json). *)

open Relational

let schema = Schema.make [ ("k", Value.TInt); ("x", Value.TInt) ]
let n_rows = 100_000
let n_keys = 100 (* 1_000 rows per key: 1% selectivity *)

let fill name =
  let r = Relation.create ~name ~schema () in
  for i = 0 to n_rows - 1 do
    ignore
      (Relation.insert r (Tuple.make [ Value.Int (i mod n_keys); Value.Int i ]))
  done;
  r

let degrees () =
  let limit =
    if !Measure.jobs_limit = 0 then Domain.recommended_domain_count ()
    else !Measure.jobs_limit
  in
  List.filter (fun j -> j <= max 1 limit) [ 1; 2; 4; 8 ]

let run () =
  Measure.section "E16: ranged index-probe pushdown (scan vs probe)"
    "One selective equality query over 100k rows (1% match), compiled \
     as a parallel plan against an indexed and an unindexed twin \
     relation: the ranged probe path touches hits only (tuple_read ~ \
     matches, index_scan = one bounded probe per range) while the \
     ranged scan path reads every live row.";
  let cores = Domain.recommended_domain_count () in
  Measure.note "hardware: %d recommended domain(s)" cores;
  let indexed = fill "indexed" in
  Relation.create_index indexed Index.Hash [ "k" ];
  let plain = fill "plain" in
  let sel r = Ra.Select (Predicate.("k" =% Value.Int 3), Ra.Rel r) in
  let reference = Plan.run (Plan.compile (sel indexed)) in
  let hits = List.length reference in
  let json =
    ref
      [
        Measure.J_obj
          [
            ("hardware_cores", Measure.J_int cores);
            ("rows", Measure.J_int n_rows);
            ("keys", Measure.J_int n_keys);
            ("matching_rows", Measure.J_int hits);
          ];
      ]
  in
  let rows =
    List.concat_map
      (fun jobs ->
        let pool = Exec.Pool.create ~jobs () in
        List.map
          (fun (path, rel) ->
            let plan = Plan.compile_parallel pool (sel rel) in
            (* correctness first: both paths must reproduce the
               sequential answer exactly *)
            if not (List.equal Tuple.equal (Plan.run plan) reference) then
              failwith
                (Printf.sprintf "E16: %s path diverged at jobs=%d" path jobs);
            let r = Measure.per_op ~times:50 (fun _ -> ignore (Plan.run plan)) in
            let reads = Measure.counter r Stats.Tuple_read in
            let scans = Measure.counter r Stats.Index_scan in
            let probes = Measure.counter r Stats.Index_probe in
            json :=
              Measure.J_obj
                [
                  ("path", Measure.J_str path);
                  ("jobs", Measure.J_int jobs);
                  ("micros_per_exec", Measure.J_float r.Measure.micros);
                  ("tuple_read_per_exec", Measure.J_float reads);
                  ("index_scan_per_exec", Measure.J_float scans);
                  ("index_probe_per_exec", Measure.J_float probes);
                ]
              :: !json;
            [
              path;
              string_of_int jobs;
              Measure.f1 r.Measure.micros;
              Measure.f1 reads;
              Measure.f1 scans;
              Measure.f1 probes;
            ])
          [ ("probe", indexed); ("scan", plain) ])
      (degrees ())
  in
  Measure.print_table
    ~title:
      (Printf.sprintf "SELECT k=3 over %dk rows (%d match)" (n_rows / 1000)
         hits)
    ~header:[ "path"; "jobs"; "us/exec"; "tuple_read"; "index_scan"; "index_probe" ]
    rows;
  Measure.write_json ~file:"BENCH_E16.json" (List.rev !json)
