(* E13 — operational: the price of crash-safety.

   (a) Journal overhead per append: the same single-row append against
       one grouped-aggregate view, undurable vs journaled to memory vs
       journaled to disk under each sync policy.  The write-ahead record
       is framed + CRC-checksummed + appended before the delta fold
       runs; everything except the fsync should be noise next to view
       maintenance.
   (b) Recovery time vs journal length: recovery replays the journal
       suffix through the normal delta path, so it is linear in the
       number of journaled batches since the last checkpoint — and
       independent of the (unstored) chronicle prefix before it.

   Machine-readable evidence lands in BENCH_E13.json, matching the
   experiment number.  (Early runs wrote BENCH_E9.json — a leftover
   from the experiment plan's numbering before E9 was taken by the
   theorem checks; the file has been renamed, see the provenance note
   in bench/results/e13_durability.json.) *)

open Relational
open Chronicle_core
open Chronicle_durability

let schema =
  Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]

let mk_db () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "total"; Aggregate.count_star "n" ] ))));
  db

let one_row i =
  Tuple.make [ Value.Int (i mod 256); Value.Int ((i * 7 mod 100) + 1) ]

let with_temp_dir f =
  let dir = Filename.temp_file "chronicle_e13" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let append_overhead json =
  let measure ?times label attach =
    let db = mk_db () in
    let cleanup = attach db in
    let r = Measure.per_op ?times (fun i -> ignore (Db.append db "mileage" [ one_row i ])) in
    cleanup ();
    json := Measure.json_of_per_op ~op:("append/" ^ label) ~n:1 r :: !json;
    ( label,
      r.Measure.micros,
      Measure.counter r Stats.Journal_bytes )
  in
  let none = measure "undurable" (fun _ -> fun () -> ()) in
  let mem sync label =
    measure label (fun db ->
        let d = Durable.attach ~sync ~storage:(Storage.mem ()) db in
        fun () -> Durable.detach d)
  in
  let disk sync label =
    with_temp_dir (fun dir ->
        measure ~times:100 label (fun db ->
            let d = Durable.attach ~sync ~storage:(Storage.disk ~dir) db in
            fun () -> Durable.detach d))
  in
  let rows =
    [
      none;
      mem Journal.Sync_never "mem";
      disk Journal.Sync_never "disk,sync=never";
      disk (Journal.Sync_every 64) "disk,sync=every:64";
      disk Journal.Sync_always "disk,sync=always";
    ]
  in
  Measure.print_table ~title:"E13a  journal overhead per single-row append"
    ~header:[ "storage"; "us/append"; "journal B/append" ]
    (List.map
       (fun (label, micros, bytes) ->
         [ label; Measure.f2 micros; Measure.f1 bytes ])
       rows)

let recovery_cost json =
  let rows = ref [] in
  List.iter
    (fun n ->
      let storage = Storage.mem () in
      let db = mk_db () in
      let d = Durable.attach ~storage db in
      Durable.checkpoint d;
      for i = 1 to n do
        ignore (Db.append db "mileage" [ one_row i ])
      done;
      let records = Durable.journal_records d in
      let bytes = Durable.journal_bytes d in
      let secs =
        Measure.median_time ~runs:3 (fun () ->
            ignore (Durable.recover ~storage ()))
      in
      rows :=
        [
          Measure.i records;
          Measure.i bytes;
          Measure.f2 (secs *. 1e3);
          Measure.f2 (secs /. float_of_int n *. 1e6);
        ]
        :: !rows;
      json :=
        Measure.J_obj
          [
            ("op", Measure.J_str "recover");
            ("n", Measure.J_int records);
            ("journal_bytes", Measure.J_int bytes);
            ("millis", Measure.J_float (secs *. 1e3));
            ("micros_per_record", Measure.J_float (secs /. float_of_int n *. 1e6));
          ]
        :: !json)
    [ 100; 1_000; 10_000 ];
  Measure.print_table ~title:"E13b  recovery time vs journal length"
    ~header:[ "journal records"; "journal bytes"; "recover ms"; "us/record" ]
    (List.rev !rows)

let run () =
  Measure.section "E13: durability — journal overhead and recovery cost"
    "Write-ahead journaling prices every append at one framed, \
     checksummed record (plus an fsync under sync=always); recovery \
     replays the post-checkpoint suffix through the normal delta path, \
     linear in journal length.";
  let json = ref [] in
  append_overhead json;
  recovery_cost json;
  Measure.write_json ~file:"BENCH_E13.json" (List.rev !json)
